//! The resident experiment engine: cached, deduplicated, sharded cell
//! execution.
//!
//! One *cell* is a `(suite, machine, solution, heuristic)` combination —
//! the same unit `Pipeline::run_matrix` fans out. The engine memoizes
//! cells in a content-addressed [`ResultCache`], collapses concurrent
//! identical requests through [`SingleFlight`], and shards the cells of
//! one request across worker threads via [`distvliw_core::par`]. Every
//! endpoint is assembled from cells, so results are shared *between*
//! endpoints too (Figure 6 and Figure 7 reuse each other's
//! MDC/DDGT-PrefClus runs).

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use distvliw_arch::MachineConfig;
use distvliw_core::cachekey::{
    cell_key_from_fingerprint, digest_fingerprint, suite_digest, CacheKey,
};
use distvliw_core::{
    par, Heuristic, IiSeedStore, Pipeline, PipelineError, PipelineOptions, Solution,
};
use distvliw_ir::Suite;
use distvliw_sim::ClusterUsage;

use crate::cache::{CacheStats, ResultCache, SingleFlight};
use crate::persist::{self, LogWriter};

/// A computed cell, shared between the cache and concurrent requesters.
pub type CellResult = Arc<Result<distvliw_core::SuiteStats, PipelineError>>;

/// One cell of an experiment grid.
#[derive(Clone, Copy)]
pub struct CellSpec<'a> {
    /// The benchmark suite to run.
    pub suite: &'a Suite,
    /// The machine to run it on (the pipeline applies the suite's
    /// interleave on top).
    pub machine: &'a MachineConfig,
    /// Coherence solution.
    pub solution: Solution,
    /// Cluster-assignment heuristic.
    pub heuristic: Heuristic,
}

/// Persistence counters, as served by `/stats` and `servecli state`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Cell results restored into the cache at boot (after last-wins
    /// dedup).
    pub loaded_cells: u64,
    /// II seeds restored into the seed store at boot.
    pub loaded_seeds: u64,
    /// Persisted records thrown away at boot: stale-era records, frames
    /// behind a corrupt one, and checksum-valid records whose payload
    /// failed to decode.
    pub discarded_records: u64,
    /// Bytes truncated at boot (torn/corrupt tails, stale stores).
    pub discarded_bytes: u64,
    /// Stores rejected wholesale for a stale era fingerprint (0–2).
    pub stale_stores: u64,
    /// Records appended to the logs since boot.
    pub appended_records: u64,
    /// Atomic compact-and-rewrite passes of the cell log since boot.
    pub compactions: u64,
    /// Explicit flushes (periodic and shutdown) since boot.
    pub flushes: u64,
    /// Persistence writes that failed with an I/O error (serving
    /// continues; the warm state just stops growing).
    pub write_errors: u64,
}

/// The open state logs plus their counters, behind one lock. Lock
/// ordering: the cache lock is always taken **before** this one.
struct PersistState {
    cells: LogWriter,
    seeds: LogWriter,
    stats: PersistStats,
}

/// Aggregate engine counters, as served by `/stats`.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Resident cache entries.
    pub cache_entries: usize,
    /// Configured cache capacity.
    pub cache_capacity: usize,
    /// Cells actually computed by the pipeline (cache misses that led
    /// the flight).
    pub computed_cells: u64,
    /// Requests served by piggybacking on an identical in-flight
    /// computation.
    pub deduped_requests: u64,
    /// Per-cluster usage aggregated over every computed cell.
    pub cluster: ClusterUsage,
    /// Kernels whose II search started from a profitable persisted or
    /// recorded seed (summed over computed cells).
    pub seeded_kernels: u64,
    /// Persistence counters, when the engine runs with a state dir.
    pub persist: Option<PersistStats>,
    /// Milliseconds since the engine was created.
    pub uptime_ms: u64,
}

/// The long-running engine behind the HTTP service.
pub struct ServeEngine {
    machine: MachineConfig,
    options: PipelineOptions,
    suites: Vec<Suite>,
    /// Content fingerprint of each entry of `suites`, precomputed so
    /// key derivation on the hot (cached) path never re-walks a graph
    /// or re-hashes a ~100 KB digest.
    fingerprints: Vec<[u8; 16]>,
    figure_names: Vec<String>,
    cache: Mutex<ResultCache<CellResult>>,
    flight: SingleFlight<CellResult>,
    /// One shared II-seed store for every pipeline this engine spawns,
    /// so a cell computed on one machine variant seeds the II search of
    /// scheduler-equivalent variants — and so the store can be persisted
    /// across restarts.
    seeds: Arc<IiSeedStore>,
    persist: Option<Mutex<PersistState>>,
    usage: Mutex<ClusterUsage>,
    computed: AtomicU64,
    deduped: AtomicU64,
    seeded: AtomicU64,
    started: Instant,
}

impl ServeEngine {
    /// An engine for `machine` with the given cell-cache capacity.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is invalid or `cache_capacity` is zero.
    #[must_use]
    pub fn new(machine: MachineConfig, cache_capacity: usize) -> Self {
        machine.validate().expect("valid machine configuration");
        let mut suites: Vec<Suite> = distvliw_mediabench::BENCHMARKS
            .iter()
            .map(distvliw_mediabench::build_suite)
            .collect();
        // The bundled recorded traces are addressable like any other
        // suite (in `/matrix` bodies and the `/sweep` grid).
        suites.extend(distvliw_mediabench::trace_suites());
        let figure_names = distvliw_mediabench::FIGURE_BENCHMARKS
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let fingerprints = suites
            .iter()
            .map(|s| digest_fingerprint(&suite_digest(s)))
            .collect();
        ServeEngine {
            machine,
            options: PipelineOptions::default(),
            suites,
            fingerprints,
            figure_names,
            cache: Mutex::new(ResultCache::new(cache_capacity)),
            flight: SingleFlight::new(),
            seeds: Arc::new(IiSeedStore::new()),
            persist: None,
            usage: Mutex::new(ClusterUsage::default()),
            computed: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            seeded: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Runs the independent static checker (`distvliw-check`) on every
    /// schedule this engine compiles, failing the cell instead of
    /// serving an illegal schedule (`serve --check`; see
    /// docs/checking.md). Debug builds always check.
    #[must_use]
    pub fn with_check(mut self, check: bool) -> Self {
        self.options.check = check;
        self
    }

    /// Attaches durable state under `dir` (created if missing): the
    /// cell cache loads from `cells.log`, the II-seed store from
    /// `seeds.log`, and both logs are kept current as the engine runs
    /// (append per insert, atomic compaction on eviction, fsync on
    /// flush). Corrupt or stale stores are recovered, never fatal —
    /// see [`PersistStats`] for what was kept.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating or opening the logs (not
    /// corruption, which is healed in place).
    pub fn with_state_dir(mut self, dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let era = persist::era_bytes();
        let (mut cells, cell_records, cell_report) =
            LogWriter::open(dir.join("cells.log"), persist::KIND_CELLS, &era)?;
        let (mut seeds_log, seed_records, seed_report) =
            LogWriter::open(dir.join("seeds.log"), persist::KIND_SEEDS, &era)?;

        let mut stats = PersistStats {
            discarded_records: cell_report.discarded_records + seed_report.discarded_records,
            discarded_bytes: cell_report.discarded_bytes + seed_report.discarded_bytes,
            stale_stores: u64::from(cell_report.stale) + u64::from(seed_report.stale),
            ..PersistStats::default()
        };

        // Replay cells in file order (LRU-first snapshot, then appends):
        // `preload` keeps the boot invisible to the traffic counters
        // while last-wins dedup and capacity eviction apply as usual.
        let mut undecodable = 0u64;
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (key, value) in cell_records {
                match persist::suite_stats_from_bytes(&value) {
                    Some(suite) => {
                        cache.preload(CacheKey::from_bytes(key), Arc::new(Ok(suite)));
                    }
                    // Checksum-valid but undecodable: a payload this
                    // era's codec never wrote. Drop it, heal below.
                    None => undecodable += 1,
                }
            }
            stats.loaded_cells = cache.len() as u64;
            if undecodable > 0 {
                let entries = cache.entries_by_recency();
                if cells.rewrite(encode_live(&entries)).is_err() {
                    stats.write_errors += 1;
                } else {
                    stats.compactions += 1;
                }
            }
        }

        let mut seeds = Vec::with_capacity(seed_records.len());
        let mut undecodable_seeds = 0u64;
        for (key, value) in seed_records {
            match (
                <[u8; 16]>::try_from(key.as_slice()),
                <[u8; 4]>::try_from(value.as_slice()),
            ) {
                (Ok(key), Ok(ii)) => seeds.push((key, u32::from_le_bytes(ii))),
                _ => undecodable_seeds += 1,
            }
        }
        self.seeds.absorb(&seeds);
        stats.loaded_seeds = self.seeds.len() as u64;
        if undecodable_seeds > 0 {
            let live = self.seeds.snapshot();
            let rewrite = seeds_log.rewrite(
                live.iter()
                    .map(|(k, ii)| (k.as_slice(), ii.to_le_bytes().to_vec())),
            );
            if rewrite.is_err() {
                stats.write_errors += 1;
            } else {
                stats.compactions += 1;
            }
        }
        stats.discarded_records += undecodable + undecodable_seeds;

        self.persist = Some(Mutex::new(PersistState {
            cells,
            seeds: seeds_log,
            stats,
        }));
        Ok(self)
    }

    /// The machine endpoint cells default to.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The bundled suite named `name`, if any.
    #[must_use]
    pub fn suite(&self, name: &str) -> Option<&Suite> {
        self.suites.iter().find(|s| s.name == name)
    }

    /// The thirteen figure suites, in the paper's order.
    pub fn figure_suites(&self) -> impl Iterator<Item = &Suite> {
        self.figure_names.iter().filter_map(|name| self.suite(name))
    }

    /// Runs one cell through cache → single-flight → pipeline.
    pub fn run_cell(&self, spec: CellSpec<'_>) -> CellResult {
        // Specs normally borrow a bundled suite, whose fingerprint was
        // precomputed; a foreign suite (e.g. re-interleaved for a
        // /matrix override) digests on the spot.
        let fingerprint = self
            .suites
            .iter()
            .position(|s| std::ptr::eq(s, spec.suite))
            .map_or_else(
                || digest_fingerprint(&suite_digest(spec.suite)),
                |i| self.fingerprints[i],
            );
        let key = cell_key_from_fingerprint(
            &fingerprint,
            spec.machine,
            &self.options,
            spec.solution,
            spec.heuristic,
        );
        let cached = {
            let mut span = distvliw_obs::Span::enter("cache_lookup");
            let value = self.cache.lock().expect("cache lock").get(&key);
            span.field_str("outcome", if value.is_some() { "hit" } else { "miss" });
            value
        };
        if let Some(value) = cached {
            return value;
        }
        let flight_start = Instant::now();
        let (value, leader) = self.flight.work(key.bytes(), || {
            // Double-check under the flight: a requester that missed the
            // cache above but reached here after the previous leader
            // retired its flight must find the published entry, not
            // recompute it. Uncounted — this request's lookup was
            // already tallied as the miss above.
            if let Some(value) = self.cache.lock().expect("cache lock").get_uncounted(&key) {
                return value;
            }
            let pipeline = Pipeline::new(spec.machine.clone())
                .with_options(self.options)
                .with_seed_store(self.seeds.clone());
            let result: CellResult =
                Arc::new(pipeline.run_suite(spec.suite, spec.solution, spec.heuristic));
            if let Ok(stats) = result.as_ref() {
                *self.usage.lock().expect("usage lock") += &stats.cluster;
                self.seeded
                    .fetch_add(stats.sched.seeded_kernels, Ordering::Relaxed);
            }
            self.computed.fetch_add(1, Ordering::Relaxed);
            // Publish to the cache *before* the flight slot is retired,
            // so a racer arriving between retirement and publication
            // cannot start a duplicate computation.
            let persist_span = distvliw_obs::Span::enter("persist");
            let mut cache = self.cache.lock().expect("cache lock");
            let evicted = cache.insert(key.clone(), result.clone());
            // Persist under the cache lock (cache → persist ordering),
            // so the log mirrors insertion order exactly.
            self.persist_insert(&cache, &key, &result, evicted.is_some());
            drop(cache);
            drop(persist_span);
            result
        });
        if !leader {
            self.deduped.fetch_add(1, Ordering::Relaxed);
            // The wait is only known retroactively: the span covers the
            // time this request was blocked on the leader's computation.
            distvliw_obs::trace::record(
                "flight_wait",
                flight_start,
                flight_start.elapsed(),
                Vec::new(),
            );
        }
        value
    }

    /// Runs a batch of cells, sharded across worker threads (results in
    /// input order). This is the serving-side analogue of
    /// `Pipeline::run_matrix`: each cell lands on a worker, and
    /// identical cells — within this batch or across concurrent
    /// requests — are computed once.
    #[must_use]
    pub fn run_cells(&self, specs: &[CellSpec<'_>]) -> Vec<CellResult> {
        par::par_map(specs, |spec| self.run_cell(*spec))
    }

    /// Mirrors one cache insertion into the logs: newly dirtied II
    /// seeds and the cell value are appended; an eviction triggers an
    /// atomic compact-and-rewrite of the cell log instead, so the log
    /// stays an exact LRU-ordered snapshot of the live set. Callers
    /// hold the cache lock (cache → persist ordering). Write failures
    /// are counted, not fatal.
    fn persist_insert(
        &self,
        cache: &ResultCache<CellResult>,
        key: &CacheKey,
        value: &CellResult,
        evicted: bool,
    ) {
        let Some(persist) = &self.persist else { return };
        let mut p = persist.lock().expect("persist lock");
        for (seed_key, ii) in self.seeds.drain_dirty() {
            if p.seeds.append(&seed_key, &ii.to_le_bytes()).is_err() {
                p.stats.write_errors += 1;
            } else {
                p.stats.appended_records += 1;
            }
        }
        if evicted {
            let entries = cache.entries_by_recency();
            if p.cells.rewrite(encode_live(&entries)).is_err() {
                p.stats.write_errors += 1;
            } else {
                p.stats.compactions += 1;
            }
        } else if let Ok(stats) = value.as_ref() {
            // Only Ok cells persist; a failed cell is recomputed (and
            // may succeed) after a restart.
            if p.cells
                .append(key.bytes(), &persist::suite_stats_bytes(stats))
                .is_err()
            {
                p.stats.write_errors += 1;
            } else {
                p.stats.appended_records += 1;
            }
        }
    }

    /// Flushes the durable state: appends any dirty II seeds and fsyncs
    /// both logs. With `compact`, additionally rewrites the cell log to
    /// the current LRU-ordered live set, capturing recency drift from
    /// cache hits since the last eviction — used on clean shutdown.
    /// No-op without a state dir; write failures are counted, not
    /// fatal.
    pub fn flush_state(&self, compact: bool) {
        let Some(persist) = &self.persist else { return };
        let cache = self.cache.lock().expect("cache lock");
        let mut p = persist.lock().expect("persist lock");
        for (seed_key, ii) in self.seeds.drain_dirty() {
            if p.seeds.append(&seed_key, &ii.to_le_bytes()).is_err() {
                p.stats.write_errors += 1;
            } else {
                p.stats.appended_records += 1;
            }
        }
        if compact {
            let entries = cache.entries_by_recency();
            if p.cells.rewrite(encode_live(&entries)).is_err() {
                p.stats.write_errors += 1;
            } else {
                p.stats.compactions += 1;
            }
        } else if p.cells.sync().is_err() {
            p.stats.write_errors += 1;
        }
        if p.seeds.sync().is_err() {
            p.stats.write_errors += 1;
        }
        p.stats.flushes += 1;
    }

    /// A snapshot of the engine counters.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock is poisoned.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let cache = self.cache.lock().expect("cache lock");
        EngineStats {
            cache: cache.stats(),
            cache_entries: cache.len(),
            cache_capacity: cache.capacity(),
            computed_cells: self.computed.load(Ordering::Relaxed),
            deduped_requests: self.deduped.load(Ordering::Relaxed),
            cluster: self.usage.lock().expect("usage lock").clone(),
            seeded_kernels: self.seeded.load(Ordering::Relaxed),
            persist: self
                .persist
                .as_ref()
                .map(|p| p.lock().expect("persist lock").stats),
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

/// Adapts an `entries_by_recency` snapshot into the record iterator a
/// cell-log rewrite wants, dropping `Err` cells (only successful runs
/// persist).
fn encode_live(entries: &[(CacheKey, CellResult)]) -> impl Iterator<Item = (&[u8], Vec<u8>)> {
    entries
        .iter()
        .filter_map(|(key, value)| match value.as_ref() {
            Ok(stats) => Some((key.bytes(), persist::suite_stats_bytes(stats))),
            Err(_) => None,
        })
}

/// Applies JSON machine overrides (see `docs/serving.md`) on top of
/// `base` and validates the result.
///
/// # Errors
///
/// Returns a message naming the offending field.
pub fn machine_with_overrides(
    base: &MachineConfig,
    overrides: &crate::json::Json,
) -> Result<MachineConfig, String> {
    use crate::json::Json;
    let mut machine = base.clone();
    let as_usize = |v: &Json, what: &str| -> Result<usize, String> {
        v.as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| format!("{what} must be a non-negative integer"))
    };
    let as_u64 = |v: &Json, what: &str| -> Result<u64, String> {
        v.as_u64()
            .ok_or_else(|| format!("{what} must be a non-negative integer"))
    };
    let as_u32 = |v: &Json, what: &str| -> Result<u32, String> {
        v.as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("{what} must be a 32-bit non-negative integer"))
    };
    if let Some(v) = overrides.get("n_clusters") {
        machine.n_clusters = as_usize(v, "n_clusters")?;
    }
    if let Some(v) = overrides.get("interleave_bytes") {
        machine.interleave_bytes = as_u64(v, "interleave_bytes")?;
    }
    if let Some(v) = overrides.get("cache") {
        if let Some(x) = v.get("total_bytes") {
            machine.cache.total_bytes = as_u64(x, "cache.total_bytes")?;
        }
        if let Some(x) = v.get("block_bytes") {
            machine.cache.block_bytes = as_u64(x, "cache.block_bytes")?;
        }
        if let Some(x) = v.get("assoc") {
            machine.cache.assoc = as_usize(x, "cache.assoc")?;
        }
        if let Some(x) = v.get("latency") {
            machine.cache.latency = as_u32(x, "cache.latency")?;
        }
    }
    for (field, buses) in [
        ("reg_buses", &mut machine.reg_buses),
        ("mem_buses", &mut machine.mem_buses),
    ] {
        if let Some(v) = overrides.get(field) {
            if let Some(x) = v.get("count") {
                buses.count = as_usize(x, field)?;
            }
            if let Some(x) = v.get("latency") {
                buses.latency = as_u32(x, field)?;
            }
        }
    }
    if let Some(v) = overrides.get("next_level") {
        if let Some(x) = v.get("ports") {
            machine.next_level.ports = as_usize(x, "next_level.ports")?;
        }
        if let Some(x) = v.get("latency") {
            machine.next_level.latency = as_u32(x, "next_level.latency")?;
        }
    }
    if let Some(v) = overrides.get("attraction_buffers") {
        machine.attraction_buffers = match v {
            Json::Null => None,
            v if !matches!(v, Json::Obj(_)) => {
                return Err(
                    "attraction_buffers must be an object {entries, assoc} or null".to_string(),
                );
            }
            v => Some(distvliw_arch::AttractionBufferConfig {
                entries: v
                    .get("entries")
                    .map(|x| as_usize(x, "attraction_buffers.entries"))
                    .transpose()?
                    .unwrap_or(16),
                assoc: v
                    .get("assoc")
                    .map(|x| as_usize(x, "attraction_buffers.assoc"))
                    .transpose()?
                    .unwrap_or(2),
            }),
        };
    }
    machine
        .validate()
        .map_err(|e| format!("invalid machine: {e}"))?;
    Ok(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn engine() -> ServeEngine {
        ServeEngine::new(MachineConfig::paper_baseline(), 64)
    }

    #[test]
    fn identical_cells_hit_the_cache() {
        let engine = engine();
        let suite = engine.suite("gsmdec").unwrap();
        let spec = CellSpec {
            suite,
            machine: engine.machine(),
            solution: Solution::Mdc,
            heuristic: Heuristic::PrefClus,
        };
        let cold = engine.run_cell(spec);
        let s = engine.stats();
        assert_eq!(s.computed_cells, 1);
        assert_eq!(s.cache.hits, 0);
        assert_eq!(s.cache.misses, 1, "one lookup outcome per request");
        let warm = engine.run_cell(spec);
        let s = engine.stats();
        assert_eq!(s.computed_cells, 1, "second run must not recompute");
        assert_eq!(s.cache.hits, 1);
        assert!(Arc::ptr_eq(&cold, &warm), "same cached value");
        // Computed usage is the cell's own per-cluster usage.
        let stats = cold.as_ref().as_ref().unwrap();
        assert_eq!(s.cluster, stats.cluster);
    }

    #[test]
    fn any_perturbation_misses() {
        let engine = engine();
        let suite = engine.suite("gsmdec").unwrap();
        let base = CellSpec {
            suite,
            machine: engine.machine(),
            solution: Solution::Mdc,
            heuristic: Heuristic::PrefClus,
        };
        engine.run_cell(base);
        // Different heuristic, solution, machine and suite each compute
        // a fresh cell.
        let m2 = engine.machine().clone().with_interleave(2);
        let other_suite = engine.suite("jpegenc").unwrap();
        let variants = [
            CellSpec {
                heuristic: Heuristic::MinComs,
                ..base
            },
            CellSpec {
                solution: Solution::Ddgt,
                ..base
            },
            CellSpec {
                machine: &m2,
                ..base
            },
            CellSpec {
                suite: other_suite,
                ..base
            },
        ];
        for (i, spec) in variants.iter().enumerate() {
            engine.run_cell(*spec);
            assert_eq!(
                engine.stats().computed_cells,
                i as u64 + 2,
                "variant {i} must compute"
            );
        }
        assert_eq!(engine.stats().cache.hits, 0);
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let engine = engine();
        let suite = engine.suite("epicdec").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    let spec = CellSpec {
                        suite,
                        machine: engine.machine(),
                        solution: Solution::Ddgt,
                        heuristic: Heuristic::PrefClus,
                    };
                    let result = engine.run_cell(spec);
                    assert!(result.is_ok());
                });
            }
        });
        let s = engine.stats();
        assert_eq!(s.computed_cells, 1, "single-flight must collapse the storm");
        assert_eq!(
            s.cache.hits + s.deduped_requests,
            5,
            "five requests piggybacked (via cache or flight)"
        );
    }

    #[test]
    fn cached_cells_match_a_direct_pipeline_run() {
        let engine = engine();
        let suite = engine.suite("g721dec").unwrap();
        let spec = CellSpec {
            suite,
            machine: engine.machine(),
            solution: Solution::Ddgt,
            heuristic: Heuristic::MinComs,
        };
        engine.run_cell(spec); // cold
        let warm = engine.run_cell(spec); // from cache
        let direct = Pipeline::new(engine.machine().clone())
            .run_suite(suite, Solution::Ddgt, Heuristic::MinComs)
            .unwrap();
        let warm = warm.as_ref().as_ref().unwrap();
        assert_eq!(warm.total_cycles(), direct.total_cycles());
        assert_eq!(warm.total, direct.total);
        assert_eq!(warm.cluster, direct.cluster);
    }

    #[test]
    fn machine_overrides_apply_and_validate() {
        let base = MachineConfig::paper_baseline();
        let body = json::parse(
            r#"{"interleave_bytes": 2,
                "reg_buses": {"count": 2, "latency": 4},
                "attraction_buffers": {"entries": 32}}"#,
        )
        .unwrap();
        let m = machine_with_overrides(&base, &body).unwrap();
        assert_eq!(m.interleave_bytes, 2);
        assert_eq!(m.reg_buses.count, 2);
        assert_eq!(m.reg_buses.latency, 4);
        assert_eq!(m.attraction_buffers.unwrap().entries, 32);
        assert_eq!(m.attraction_buffers.unwrap().assoc, 2);

        // Null strips the buffers.
        let none = json::parse(r#"{"attraction_buffers": null}"#).unwrap();
        let m = machine_with_overrides(
            &base
                .clone()
                .with_attraction_buffers(distvliw_arch::AttractionBufferConfig::paper()),
            &none,
        )
        .unwrap();
        assert_eq!(m.attraction_buffers, None);

        // Invalid geometry is rejected, not run.
        let bad = json::parse(r#"{"interleave_bytes": 16}"#).unwrap();
        assert!(machine_with_overrides(&base, &bad).is_err());
        let bad = json::parse(r#"{"n_clusters": "four"}"#).unwrap();
        assert!(machine_with_overrides(&base, &bad).is_err());
        // `false` must not silently *enable* default buffers.
        let bad = json::parse(r#"{"attraction_buffers": false}"#).unwrap();
        assert!(machine_with_overrides(&base, &bad).is_err());
    }
}
