//! A minimal HTTP/1.1 client for `servecli`, the CI smoke driver and
//! the integration tests. Supports keep-alive connection reuse — the
//! load generator holds one connection per worker.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// One response: status code, headers and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server asked to close this connection.
    #[must_use]
    pub fn closes(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A persistent connection to one server.
pub struct Client {
    host: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Strips an optional `http://` scheme and trailing slash from a base
/// URL, leaving `host:port`.
#[must_use]
pub fn host_of(base: &str) -> String {
    base.trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string()
}

impl Client {
    /// Connects to `base` (`http://host:port` or `host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(base: &str) -> io::Result<Client> {
        let host = host_of(base);
        let stream = TcpStream::connect(&host)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            host,
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issues `GET path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed responses.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Issues `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n{body}",
            self.host,
            body.len()
        )?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("server closed the connection"));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("eof in response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let len = content_length.ok_or_else(|| bad("missing content-length"))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// One-shot GET on a fresh connection.
///
/// # Errors
///
/// Propagates connect and I/O failures.
pub fn get(base: &str, path: &str) -> io::Result<ClientResponse> {
    Client::connect(base)?.get(path)
}

/// One-shot POST on a fresh connection.
///
/// # Errors
///
/// Propagates connect and I/O failures.
pub fn post(base: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    Client::connect(base)?.post(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_normalization() {
        assert_eq!(host_of("http://127.0.0.1:7411/"), "127.0.0.1:7411");
        assert_eq!(host_of("localhost:80"), "localhost:80");
    }

    #[test]
    fn parses_a_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\n\r\n{}";
        let resp = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{}");
        assert_eq!(resp.header("Content-Type"), Some("application/json"));
        assert!(!resp.closes());
    }
}
