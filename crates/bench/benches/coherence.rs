//! Criterion benches for the coherence passes themselves: chain finding,
//! the DDG transformation and code specialization.

use criterion::{criterion_group, criterion_main, Criterion};
use distvliw_coherence::{chain_stats, find_chains, specialize_kernel, transform};
use std::hint::black_box;

fn bench_coherence(c: &mut Criterion) {
    let suite = distvliw_mediabench::suite("epicdec").expect("bundled benchmark");
    let kernel = &suite.kernels[0]; // the 76-memory-op chain loop

    c.bench_function("coherence/find_chains/epicdec", |b| {
        b.iter(|| find_chains(black_box(&kernel.ddg)));
    });

    c.bench_function("coherence/ddgt_transform/epicdec", |b| {
        b.iter(|| {
            let mut g = kernel.ddg.clone();
            transform(black_box(&mut g), 4)
        });
    });

    c.bench_function("coherence/specialize/epicdec", |b| {
        b.iter(|| specialize_kernel(black_box(kernel)));
    });

    c.bench_function("coherence/chain_stats/all_benchmarks", |b| {
        let suites = distvliw_mediabench::suites();
        b.iter(|| {
            suites
                .iter()
                .map(|s| chain_stats(black_box(s.kernels.iter())))
                .collect::<Vec<_>>()
        });
    });
}

criterion_group!(benches, bench_coherence);
criterion_main!(benches);
