//! Criterion benches for the cycle-level simulator: throughput of the
//! lockstep engine with and without Attraction Buffers.

use criterion::{criterion_group, criterion_main, Criterion};
use distvliw_arch::{AttractionBufferConfig, MachineConfig};
use distvliw_coherence::{find_chains, SchedConstraints};
use distvliw_ir::profile::preferred_clusters;
use distvliw_sched::{Heuristic, ModuloScheduler};
use distvliw_sim::{simulate_kernel, SimOptions};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let suite = distvliw_mediabench::suite("pgpdec").expect("bundled benchmark");
    let base = MachineConfig::paper_baseline().with_interleave(suite.interleave_bytes);
    let with_ab = base
        .clone()
        .with_attraction_buffers(AttractionBufferConfig::paper());
    let kernel = &suite.kernels[0];
    let prefs = preferred_clusters(kernel, base.n_clusters, |a| base.home_cluster(a));
    let chains = find_chains(&kernel.ddg);
    let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, Some(&prefs), 4);
    let schedule = ModuloScheduler::new(&base)
        .schedule(&kernel.ddg, &constraints, &prefs, Heuristic::PrefClus)
        .expect("schedulable");

    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("pgpdec_mdc/256_iters", |b| {
        b.iter(|| simulate_kernel(black_box(&base), kernel, &schedule, SimOptions::default()));
    });
    group.bench_function("pgpdec_mdc/256_iters_with_abs", |b| {
        b.iter(|| {
            simulate_kernel(
                black_box(&with_ab),
                kernel,
                &schedule,
                SimOptions::default(),
            )
        });
    });
    group.bench_function("pgpdec_mdc/no_violation_detection", |b| {
        let opts = SimOptions {
            detect_violations: false,
            ..SimOptions::default()
        };
        b.iter(|| simulate_kernel(black_box(&base), kernel, &schedule, opts));
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
