//! Criterion benches over the experiment drivers: one full
//! benchmark-suite pipeline run per paper artifact, exercising the same
//! code paths as the reproduction binaries (`fig6`, `fig7`, `fig9`,
//! `table3`, `table4`, `table5`, `nobal`, `loops`) at a reduced
//! iteration budget.

use criterion::{criterion_group, criterion_main, Criterion};
use distvliw_arch::{AttractionBufferConfig, MachineConfig};
use distvliw_core::experiments::{table3, table5};
use distvliw_core::{Heuristic, Pipeline, Solution};
use std::hint::black_box;

fn quick_pipeline(machine: MachineConfig) -> Pipeline {
    Pipeline::new(machine).with_options(distvliw_bench::quick_options())
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    // Figure 6 / Figure 7 path: the three solutions on one benchmark.
    let suite = distvliw_mediabench::suite("gsmdec").expect("bundled benchmark");
    group.bench_function("fig6_fig7/gsmdec_all_solutions", |b| {
        let p = quick_pipeline(MachineConfig::paper_baseline());
        b.iter(|| {
            for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
                let stats = p
                    .run_suite(black_box(&suite), solution, Heuristic::PrefClus)
                    .unwrap();
                black_box(stats);
            }
        });
    });

    // Figure 9 path: the same with Attraction Buffers.
    group.bench_function("fig9/gsmdec_mdc_with_abs", |b| {
        let machine = MachineConfig::paper_baseline()
            .with_attraction_buffers(AttractionBufferConfig::paper());
        let p = quick_pipeline(machine);
        b.iter(|| {
            p.run_suite(black_box(&suite), Solution::Mdc, Heuristic::PrefClus)
                .unwrap()
        });
    });

    // Table 3 (static analysis over all benchmarks).
    group.bench_function("table3/all_benchmarks", |b| {
        b.iter(|| black_box(table3()));
    });

    // Table 4 path: communication-operation comparison on one benchmark.
    group.bench_function("table4/pgpenc_comm_ratio", |b| {
        let p = quick_pipeline(MachineConfig::paper_baseline());
        let suite = distvliw_mediabench::suite("pgpenc").unwrap();
        b.iter(|| {
            let mdc = p
                .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
                .unwrap();
            let ddgt = p
                .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
                .unwrap();
            black_box(ddgt.total.comm_ops as f64 / mdc.total.comm_ops.max(1) as f64)
        });
    });

    // Table 5 (code specialization).
    group.bench_function("table5/specialization", |b| {
        b.iter(|| black_box(table5()));
    });

    // NOBAL path: one benchmark on the unbalanced machines.
    group.bench_function("nobal/rasta_both_configs", |b| {
        let suite = distvliw_mediabench::suite("rasta").unwrap();
        let mem = quick_pipeline(MachineConfig::nobal_mem());
        let reg = quick_pipeline(MachineConfig::nobal_reg());
        b.iter(|| {
            for p in [&mem, &reg] {
                let s = p.run_suite(black_box(&suite), Solution::Ddgt, Heuristic::PrefClus);
                black_box(s.unwrap());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
