//! Criterion benches for the modulo scheduler: the compile-time cost of
//! each coherence solution on a small and a large chained loop.

use criterion::{criterion_group, criterion_main, Criterion};
use distvliw_arch::MachineConfig;
use distvliw_coherence::{find_chains, transform, SchedConstraints};
use distvliw_ir::profile::preferred_clusters;
use distvliw_sched::{Heuristic, ModuloScheduler};
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let machine = MachineConfig::paper_baseline();
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);

    for bench in ["gsmdec", "epicdec"] {
        let suite = distvliw_mediabench::suite(bench).expect("bundled benchmark");
        let m = machine.clone().with_interleave(suite.interleave_bytes);
        let kernel = &suite.kernels[0];
        let prefs = preferred_clusters(kernel, m.n_clusters, |a| m.home_cluster(a));

        group.bench_function(format!("{bench}/free"), |b| {
            b.iter(|| {
                ModuloScheduler::new(&m)
                    .schedule(
                        black_box(&kernel.ddg),
                        &SchedConstraints::none(),
                        &prefs,
                        Heuristic::MinComs,
                    )
                    .unwrap()
            });
        });

        let chains = find_chains(&kernel.ddg);
        let mdc = SchedConstraints::for_mdc(&chains, &kernel.ddg, Some(&prefs), m.n_clusters);
        group.bench_function(format!("{bench}/mdc"), |b| {
            b.iter(|| {
                ModuloScheduler::new(&m)
                    .schedule(black_box(&kernel.ddg), &mdc, &prefs, Heuristic::PrefClus)
                    .unwrap()
            });
        });

        let mut ddgt_kernel = kernel.clone();
        let report = transform(&mut ddgt_kernel.ddg, m.n_clusters);
        let ddgt = SchedConstraints::for_ddgt(&report);
        group.bench_function(format!("{bench}/ddgt"), |b| {
            b.iter(|| {
                ModuloScheduler::new(&m)
                    .schedule(
                        black_box(&ddgt_kernel.ddg),
                        &ddgt,
                        &prefs,
                        Heuristic::PrefClus,
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
