//! Shared helpers for the reproduction binaries and Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use distvliw_arch::MachineConfig;
use distvliw_core::PipelineOptions;
use distvliw_sim::SimOptions;

/// The paper's Table 2 machine.
#[must_use]
pub fn paper_machine() -> MachineConfig {
    MachineConfig::paper_baseline()
}

/// Pipeline options with a reduced iteration cap, for quick benches.
#[must_use]
pub fn quick_options() -> PipelineOptions {
    PipelineOptions {
        sim: SimOptions {
            max_iterations: 128,
            detect_violations: false,
        },
        ..PipelineOptions::default()
    }
}
