//! Shared helpers for the reproduction binaries and Criterion benches.
//!
//! Every experiment driver under `src/bin/` used to carry its own copy
//! of the compute-render-print-or-exit scaffolding; it now lives here
//! once. [`report`] renders any named experiment to a string,
//! [`run_experiment_main`] is the whole body of the thin per-experiment
//! bins, and [`EXPERIMENTS`] enumerates the catalog the `all` bin
//! iterates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use distvliw_arch::MachineConfig;
use distvliw_core::experiments::{
    epicdec_ab_case_study, fig6, fig7, fig9, gsmdec_case_study, nobal, sweep, sweep_default_suites,
    table3, table4, table5, SweepSpec,
};
use distvliw_core::{report as render, Heuristic, Pipeline, PipelineOptions, Solution};
use distvliw_sim::SimOptions;

/// The paper's Table 2 machine.
#[must_use]
pub fn paper_machine() -> MachineConfig {
    MachineConfig::paper_baseline()
}

/// Pipeline options with a reduced iteration cap, for quick benches.
#[must_use]
pub fn quick_options() -> PipelineOptions {
    PipelineOptions {
        sim: SimOptions {
            max_iterations: 128,
            detect_violations: false,
        },
        ..PipelineOptions::default()
    }
}

/// Every experiment name [`report`] understands, in the paper's order.
/// Each is also the name of a thin bin under `src/bin/`; the figure and
/// table entries and `sweep` additionally have a matching serving-layer
/// route (`hybrid`, `loops` and `imbalance` are bin-only). Every report
/// begins with its own descriptive title line.
pub const EXPERIMENTS: &[&str] = &[
    "table3",
    "fig6",
    "fig7",
    "table4",
    "table5",
    "fig9",
    "nobal",
    "loops",
    "hybrid",
    "imbalance",
    "sweep",
];

/// Renders the named experiment against `machine`.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or pipeline
/// failures.
pub fn report(name: &str, machine: &MachineConfig) -> Result<String, String> {
    let fail = |e: distvliw_core::PipelineError| format!("{name} failed: {e}");
    match name {
        "table3" => Ok(render::render_table3(&table3())),
        "fig6" => fig6(machine).map(|r| render::render_fig6(&r)).map_err(fail),
        "fig7" => fig7(machine)
            .map(|r| render::render_exec(&r, "Figure 7: normalized execution time"))
            .map_err(fail),
        "fig9" => fig9(machine)
            .map(|r| {
                render::render_exec(
                    &r,
                    "Figure 9: normalized execution time with Attraction Buffers",
                )
            })
            .map_err(fail),
        "table4" => table4(machine)
            .map(|r| render::render_table4(&r))
            .map_err(fail),
        "table5" => Ok(render::render_table5(&table5())),
        "nobal" => nobal_report().map_err(fail),
        "loops" => loops_report(machine).map_err(fail),
        "hybrid" => hybrid_report(machine).map_err(fail),
        "imbalance" => imbalance_report(machine).map_err(fail),
        "sweep" => sweep_report(machine).map_err(fail),
        other => Err(format!("unknown experiment `{other}`")),
    }
}

/// The whole body of a thin experiment bin: renders `name` on the paper
/// machine, prints the report, and turns a failure into exit code 1.
#[must_use]
pub fn run_experiment_main(name: &str) -> std::process::ExitCode {
    match report(name, &paper_machine()) {
        Ok(text) => {
            print!("{text}");
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Both NOBAL machine variants, concatenated.
fn nobal_report() -> Result<String, distvliw_core::PipelineError> {
    let mut out = String::new();
    for (machine, title) in [
        (
            MachineConfig::nobal_mem(),
            "NOBAL+MEM: more memory buses than register buses",
        ),
        (
            MachineConfig::nobal_reg(),
            "NOBAL+REG: more register buses than memory buses",
        ),
    ] {
        let rows = nobal(&machine)?;
        let _ = writeln!(out, "{}", render::render_nobal(&rows, title));
    }
    Ok(out)
}

/// The gsmdec and epicdec loop case studies, concatenated.
fn loops_report(machine: &MachineConfig) -> Result<String, distvliw_core::PipelineError> {
    let mut out = String::new();
    let _ = writeln!(out, "Loop case studies (paper Sections 4.2 and 5.4)");
    let _ = writeln!(
        out,
        "{}",
        render::render_case_study(&gsmdec_case_study(machine)?)
    );
    let _ = writeln!(
        out,
        "(with Attraction Buffers)\n{}",
        render::render_case_study(&epicdec_ab_case_study(machine)?)
    );
    Ok(out)
}

/// The per-loop hybrid of paper Section 6 against pure MDC and DDGT.
fn hybrid_report(machine: &MachineConfig) -> Result<String, distvliw_core::PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut out = String::new();
    let _ = writeln!(out, "Hybrid solution (per-loop best of MDC/DDGT, PrefClus)");
    let _ = writeln!(
        out,
        "{:<10} | {:>10} {:>10} {:>10} | {:>10}",
        "benchmark", "MDC", "DDGT", "Hybrid", "gain"
    );
    for suite in distvliw_mediabench::figure_suites() {
        let run = |s| {
            pipeline
                .run_suite(&suite, s, Heuristic::PrefClus)
                .map(|r| r.total_cycles())
        };
        let mdc = run(Solution::Mdc)?;
        let ddgt = run(Solution::Ddgt)?;
        let hybrid = run(Solution::Hybrid)?;
        let best_pure = mdc.min(ddgt);
        let gain = best_pure as f64 / hybrid.max(1) as f64 - 1.0;
        let _ = writeln!(
            out,
            "{:<10} | {:>10} {:>10} {:>10} | {:>9.1}%",
            suite.name,
            mdc,
            ddgt,
            hybrid,
            gain * 100.0
        );
    }
    Ok(out)
}

/// Per-cluster access shares, violations and grant pressure under
/// MDC/DDGT (PrefClus) — the imbalance surface the ROADMAP's
/// workload-breadth item asks for.
fn imbalance_report(machine: &MachineConfig) -> Result<String, distvliw_core::PipelineError> {
    let pipeline = Pipeline::new(machine.clone());
    let mut entries = Vec::new();
    for suite in distvliw_mediabench::figure_suites() {
        for solution in [Solution::Mdc, Solution::Ddgt] {
            let stats = pipeline.run_suite(&suite, solution, Heuristic::PrefClus)?;
            entries.push((
                format!("{} {solution}(PrefClus)", suite.name),
                stats.cluster,
            ));
        }
    }
    Ok(render::render_cluster_imbalance(
        "Cluster imbalance: accesses by issuing cluster (PrefClus)",
        &entries,
    ))
}

/// The cluster-count × memory-bus sensitivity sweep over the default
/// workload mix (one synthetic benchmark plus the bundled recorded
/// traces), all four solutions per grid point. Runs the factored
/// schedule-once/sim-many path and appends its reuse counters, so a
/// sched-axis fallback to recompilation is visible in the report.
fn sweep_report(machine: &MachineConfig) -> Result<String, distvliw_core::PipelineError> {
    let run = sweep(machine, &sweep_default_suites(), &SweepSpec::default())?;
    let mut out = render::render_sweep(
        &run.rows,
        "Sensitivity sweep: cluster count × memory buses (PrefClus; gsmdec + recorded traces)",
    );
    out.push_str(&render::render_sweep_reuse(&run.reuse));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(report("fig42", &paper_machine()).is_err());
    }

    #[test]
    fn compile_only_reports_render() {
        // table3/table5 run no pipeline, so they are cheap enough for a
        // unit test and exercise the dispatch path end to end.
        let t3 = report("table3", &paper_machine()).unwrap();
        assert!(t3.contains("Table 3"));
        let t5 = report("table5", &paper_machine()).unwrap();
        assert!(t5.contains("specialization"));
    }

    #[test]
    fn catalog_names_are_unique_and_dispatchable() {
        let mut seen = std::collections::HashSet::new();
        for &name in EXPERIMENTS {
            assert!(seen.insert(name), "duplicate experiment {name}");
            // Dispatch must at least recognize the name (cheap ones run
            // above; here only the unknown-name branch must not fire).
            if matches!(name, "table3" | "table5") {
                assert!(report(name, &paper_machine()).is_ok());
            }
        }
    }
}
