//! Reproduces **Table 5**: chain restrictions (CMR/CAR) before and after
//! code specialization for epicdec, pgpdec and rasta.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("table5")
}
