//! Reproduces **Table 5**: chain restrictions (CMR/CAR) before and after
//! code specialization for epicdec, pgpdec and rasta.

use distvliw_core::experiments::table5;
use distvliw_core::report::render_table5;

fn main() {
    print!("{}", render_table5(&table5()));
}
