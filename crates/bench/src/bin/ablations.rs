//! Ablation studies called out by the paper and by `DESIGN.md`:
//!
//! 1. **32 register buses** (paper Section 4.2: "the benchmarks were
//!    simulated using an upper bound of 32 register-to-register buses and
//!    compute time was not reduced much") — shows that at 4 buses the
//!    DDGT bottleneck is the extra stores and edges, not communications.
//! 2. **Attraction Buffer capacity sweep** on the epicdec chain loop
//!    (Section 5.4's mechanism: MDC overflows one buffer, DDGT uses all
//!    four).
//! 3. **Cache-sensitive latency assignment on/off** — the scheduler's
//!    compute/stall trade-off (paper Section 2.2, reference 21).

use distvliw_arch::{AttractionBufferConfig, BusConfig, MachineConfig};
use distvliw_core::{Heuristic, Pipeline, PipelineOptions, Solution};

fn main() {
    bus_upper_bound();
    ab_capacity_sweep();
    latency_assignment();
}

/// DDGT compute time with 4 vs 32 register buses.
fn bus_upper_bound() {
    println!("== Ablation 1: register-bus upper bound (DDGT, PrefClus) ==");
    println!(
        "{:<10} | {:>14} {:>14} | {:>9}",
        "benchmark", "compute @4bus", "compute @32bus", "reduction"
    );
    let four = Pipeline::new(MachineConfig::paper_baseline());
    let many = Pipeline::new(MachineConfig::paper_baseline().with_reg_buses(BusConfig {
        count: 32,
        latency: 2,
    }));
    for name in ["epicdec", "pgpdec", "pgpenc", "rasta"] {
        let suite = distvliw_mediabench::suite(name).expect("bundled benchmark");
        let a = four
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        let b = many
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        let reduction = 1.0 - b.total.compute_cycles as f64 / a.total.compute_cycles.max(1) as f64;
        println!(
            "{:<10} | {:>14} {:>14} | {:>8.1}%",
            name,
            a.total.compute_cycles,
            b.total.compute_cycles,
            reduction * 100.0
        );
    }
    println!();
}

/// Local-hit ratio of the epicdec chain loop vs AB capacity.
fn ab_capacity_sweep() {
    println!("== Ablation 2: Attraction Buffer capacity (epicdec chain loop) ==");
    println!(
        "{:<10} | {:>14} {:>14}",
        "entries", "MDC local-hit", "DDGT local-hit"
    );
    let suite = distvliw_mediabench::suite("epicdec").expect("bundled benchmark");
    let chained = &suite.kernels[0];
    for entries in [0usize, 4, 8, 16, 32, 64] {
        let mut machine = MachineConfig::paper_baseline().with_interleave(suite.interleave_bytes);
        if entries > 0 {
            machine = machine.with_attraction_buffers(AttractionBufferConfig { entries, assoc: 2 });
        }
        let p = Pipeline::new(machine);
        let mdc = p
            .run_kernel(chained, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let ddgt = p
            .run_kernel(chained, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        println!(
            "{:<10} | {:>13.1}% {:>13.1}%",
            entries,
            mdc.stats.local_hit_ratio() * 100.0,
            ddgt.stats.local_hit_ratio() * 100.0
        );
    }
    println!();
}

/// Compute/stall with and without the latency-assignment relaxation.
fn latency_assignment() {
    println!("== Ablation 3: cache-sensitive latency assignment (MDC, PrefClus) ==");
    println!(
        "{:<10} | {:>10} {:>10} | {:>10} {:>10}",
        "benchmark", "compute+", "stall+", "compute-", "stall-"
    );
    let on = Pipeline::new(MachineConfig::paper_baseline());
    let off = Pipeline::new(MachineConfig::paper_baseline()).with_options(PipelineOptions {
        relax_latencies: false,
        ..PipelineOptions::default()
    });
    for name in ["gsmdec", "pgpdec", "rasta"] {
        let suite = distvliw_mediabench::suite(name).expect("bundled benchmark");
        let a = on
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let b = off
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        println!(
            "{:<10} | {:>10} {:>10} | {:>10} {:>10}",
            name,
            a.total.compute_cycles,
            a.total.stall_cycles,
            b.total.compute_cycles,
            b.total.stall_cycles
        );
    }
    println!("(+ = relaxation on: larger assumed latencies trade stall for compute)");
}
