//! Scheduler / pipeline timing harness: runs the hot-path benchmarks and
//! writes a `BENCH_sched.json` summary so successive revisions have a
//! perf trajectory.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p distvliw-bench --bin bench [-- OUT.json]
//! ```
//!
//! The output path defaults to `BENCH_sched.json` in the current
//! directory. Compare against a previous run with any JSON diff; the
//! committed `BENCH_sched.baseline.json` holds the timings of the first
//! green build of the seed scheduler (before the dense-map /
//! transactional-MRT rewrite).

use std::time::Instant;

use criterion::{results_json, BenchResult};
use distvliw_arch::MachineConfig;
use distvliw_coherence::{find_chains, transform, SchedConstraints};
use distvliw_core::experiments::{
    sweep, sweep_default_suites, sweep_machine, sweep_naive, SweepSpec,
};
use distvliw_core::{Heuristic, Pipeline, Solution};
use distvliw_ir::profile::preferred_clusters;
use distvliw_mediabench::eject_stress_kernel;
use distvliw_sched::ModuloScheduler;
use distvliw_sim::{simulate_kernel, SimOptions};

/// Times `f` with calibration: grows the batch until one sample lasts
/// ≥ 2 ms, then reports the median of `samples` batches.
fn time_median<F: FnMut()>(id: &str, samples: usize, mut f: F) -> BenchResult {
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_nanos() >= 2_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = per_iter[per_iter.len() / 2];
    println!("{id}: {:.3} ms/iter", median_ns / 1e6);
    BenchResult {
        id: id.to_string(),
        median_ns,
        iters_per_sample: iters,
        samples,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sched.json".to_string());
    // Fail before spending a minute benchmarking if the output path is
    // unwritable.
    if let Err(e) = std::fs::write(&out, "[]\n") {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    let mut results: Vec<BenchResult> = Vec::new();

    // Scheduler hot path: the same configurations as the Criterion
    // `scheduler` bench group.
    for bench in ["gsmdec", "epicdec"] {
        let suite = distvliw_mediabench::suite(bench).expect("bundled benchmark");
        let m = MachineConfig::paper_baseline().with_interleave(suite.interleave_bytes);
        let kernel = &suite.kernels[0];
        let prefs = preferred_clusters(kernel, m.n_clusters, |a| m.home_cluster(a));

        let free = SchedConstraints::none();
        results.push(time_median(&format!("scheduler/{bench}/free"), 10, || {
            let s = ModuloScheduler::new(&m)
                .schedule(&kernel.ddg, &free, &prefs, Heuristic::MinComs)
                .unwrap();
            std::hint::black_box(s);
        }));

        let chains = find_chains(&kernel.ddg);
        let mdc = SchedConstraints::for_mdc(&chains, &kernel.ddg, Some(&prefs), m.n_clusters);
        results.push(time_median(&format!("scheduler/{bench}/mdc"), 10, || {
            let s = ModuloScheduler::new(&m)
                .schedule(&kernel.ddg, &mdc, &prefs, Heuristic::PrefClus)
                .unwrap();
            std::hint::black_box(s);
        }));

        let mut ddgt_kernel = kernel.clone();
        let report = transform(&mut ddgt_kernel.ddg, m.n_clusters);
        let ddgt = SchedConstraints::for_ddgt(&report);
        results.push(time_median(&format!("scheduler/{bench}/ddgt"), 10, || {
            let s = ModuloScheduler::new(&m)
                .schedule(&ddgt_kernel.ddg, &ddgt, &prefs, Heuristic::PrefClus)
                .unwrap();
            std::hint::black_box(s);
        }));
    }

    // Ejection scheduler: adversarial MDC-pinned chains at 8/16
    // clusters (docs/scheduling.md). The timing rows pin the cost of an
    // ejection-heavy search; the `ejections/*` rows record the raw
    // ejection counts so perfcheck can report (never fail on) the
    // trajectory.
    for n_clusters in [8usize, 16] {
        let base = MachineConfig::paper_baseline();
        let machine = sweep_machine(&base, n_clusters, base.mem_buses);
        let (kernel, prefs) = eject_stress_kernel(n_clusters, n_clusters);
        let chains = find_chains(&kernel.ddg);
        let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, Some(&prefs), n_clusters);
        results.push(time_median(
            &format!("sched/eject/stress{n_clusters}"),
            10,
            || {
                let s = ModuloScheduler::new(&machine)
                    .schedule(&kernel.ddg, &constraints, &prefs, Heuristic::PrefClus)
                    .unwrap();
                std::hint::black_box(s);
            },
        ));
        let (schedule, stats) = ModuloScheduler::new(&machine)
            .schedule_with_stats(&kernel.ddg, &constraints, &prefs, Heuristic::PrefClus)
            .unwrap();
        let (restart, restart_stats) = ModuloScheduler::new(&machine)
            .with_ejection(false)
            .schedule_with_stats(&kernel.ddg, &constraints, &prefs, Heuristic::PrefClus)
            .unwrap();
        println!(
            "sched/eject/stress{n_clusters}: II {} in {} attempts ({} ejections) vs restart-only II {} in {} attempts",
            schedule.ii,
            stats.placement_attempts,
            stats.ejections,
            restart.ii,
            restart_stats.placement_attempts,
        );
        results.push(BenchResult {
            id: format!("ejections/stress{n_clusters}"),
            median_ns: stats.ejections as f64,
            iters_per_sample: 1,
            samples: 1,
        });
    }
    // Suite-level ejection counts for the paper kernels (count rows,
    // not timings — reported by perfcheck, never gated).
    for bench in ["gsmdec", "epicdec"] {
        let suite = distvliw_mediabench::suite(bench).expect("bundled benchmark");
        let pipeline = Pipeline::new(MachineConfig::paper_baseline());
        for solution in [Solution::Mdc, Solution::Ddgt] {
            let stats = pipeline
                .run_suite(&suite, solution, Heuristic::PrefClus)
                .unwrap();
            results.push(BenchResult {
                id: format!("ejections/{bench}_{}", solution.to_string().to_lowercase()),
                median_ns: stats.sched.ejections as f64,
                iters_per_sample: 1,
                samples: 1,
            });
        }
    }

    // Simulator hot path: one fixed schedule simulated end to end
    // (dense event queue + batched address streams; see docs/sim.md).
    for bench in ["gsmdec", "epicdec"] {
        let suite = distvliw_mediabench::suite(bench).expect("bundled benchmark");
        let m = MachineConfig::paper_baseline().with_interleave(suite.interleave_bytes);
        let kernel = &suite.kernels[0];
        let prefs = preferred_clusters(kernel, m.n_clusters, |a| m.home_cluster(a));
        let chains = find_chains(&kernel.ddg);
        let mdc = SchedConstraints::for_mdc(&chains, &kernel.ddg, Some(&prefs), m.n_clusters);
        let schedule = ModuloScheduler::new(&m)
            .schedule(&kernel.ddg, &mdc, &prefs, Heuristic::PrefClus)
            .unwrap();
        results.push(time_median(&format!("sim/{bench}/mdc"), 10, || {
            let stats = simulate_kernel(&m, kernel, &schedule, SimOptions::default());
            std::hint::black_box(stats);
        }));
    }

    // Pipeline fan-out: full suites end to end (kernels run in
    // parallel; set DISTVLIW_THREADS=1 for the serial reference).
    let pipeline = Pipeline::new(MachineConfig::paper_baseline());
    for (bench, samples) in [("gsmdec", 5), ("epicdec", 3)] {
        let suite = distvliw_mediabench::suite(bench).expect("bundled benchmark");
        results.push(time_median(
            &format!("pipeline/{bench}/mdc_prefclus"),
            samples,
            || {
                let stats = pipeline
                    .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
                    .unwrap();
                std::hint::black_box(stats);
            },
        ));
    }

    // Sweep grid: the default cluster×bus grid through the naive
    // per-cell path (every cell compiles and simulates from cold) and
    // the factored schedule-once/sim-many path. Both legs run
    // back-to-back in the same process, so perfcheck's same-run
    // `naive/factored` speedup gate is immune to machine drift between
    // bench runs; each id is also regression-gated against the baseline
    // like any other timing.
    {
        let base = MachineConfig::paper_baseline();
        let suites = sweep_default_suites();
        let spec = SweepSpec::default();
        results.push(time_median("sweep/default/naive", 5, || {
            let rows = sweep_naive(&base, &suites, &spec).unwrap();
            std::hint::black_box(rows);
        }));
        results.push(time_median("sweep/default/factored", 5, || {
            let run = sweep(&base, &suites, &spec).unwrap();
            std::hint::black_box(run);
        }));
    }

    std::fs::write(&out, results_json(&results)).expect("write bench json");
    println!("wrote {out}");
}
