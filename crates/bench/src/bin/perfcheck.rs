//! Perf-trajectory gate: compares a fresh `bench` run against the
//! committed baseline and fails (exit 1) if any benchmark shared by both
//! files regressed beyond the allowed ratio.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p distvliw-bench --bin perfcheck -- \
//!     BENCH_sched.ci.json BENCH_sched.baseline.json [max-ratio]
//! ```
//!
//! `max-ratio` defaults to 1.3 (a >1.3× median slowdown fails, the
//! threshold named in ROADMAP.md). Benchmark ids present in only one
//! file are reported but never fail the check, so adding a benchmark
//! does not require re-recording the baseline in the same change.
//! Improvements are reported too; they always pass.
//!
//! Ids under the `ejections/` prefix are not timings at all: they carry
//! the ejection-scheduler's raw eviction counts (see
//! docs/scheduling.md). Their deltas are *reported* so the trajectory
//! is visible in CI logs, but they never fail the gate — an ejection
//! count moving means the scheduler worked differently, which the
//! golden schedule snapshots already adjudicate.

use std::process::ExitCode;

use criterion::{results_from_json, BenchResult};

/// Default failure threshold: current/baseline median ratio above this
/// fails the gate.
const DEFAULT_MAX_RATIO: f64 = 1.3;

fn load(path: &str) -> Result<Vec<BenchResult>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    results_from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path) = match &args[..] {
        [c, b] | [c, b, _] => (c.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: perfcheck CURRENT.json BASELINE.json [max-ratio]");
            return ExitCode::FAILURE;
        }
    };
    let max_ratio = match args.get(2) {
        None => DEFAULT_MAX_RATIO,
        Some(raw) => match raw.parse::<f64>() {
            Ok(r) if r > 0.0 => r,
            _ => {
                eprintln!("max-ratio must be a positive number, got `{raw}`");
                return ExitCode::FAILURE;
            }
        },
    };

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let mut compared = 0usize;
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.id == cur.id) else {
            println!("{:<32} (new: no baseline entry, skipped)", cur.id);
            continue;
        };
        if cur.id.starts_with("ejections/") {
            // Count rows, not timings: report the delta, never fail.
            let delta = cur.median_ns - base.median_ns;
            println!(
                "{:<32} {:>10.0} evictions vs {:>8.0} baseline  delta {delta:>+6.0}  (report-only)",
                cur.id, cur.median_ns, base.median_ns,
            );
            continue;
        }
        compared += 1;
        let ratio = cur.median_ns / base.median_ns;
        let verdict = if ratio > max_ratio {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{:<32} {:>10.3} ms vs {:>10.3} ms  ratio {ratio:>5.2}  {verdict}",
            cur.id,
            cur.median_ns / 1e6,
            base.median_ns / 1e6,
        );
    }
    for base in &baseline {
        if !current.iter().any(|c| c.id == base.id) {
            println!("{:<32} (missing from current run)", base.id);
        }
    }

    if compared == 0 {
        eprintln!("no benchmark ids in common between {current_path} and {baseline_path}");
        return ExitCode::FAILURE;
    }
    if failed {
        eprintln!("perf regression: some medians exceed {max_ratio}x of baseline");
        return ExitCode::FAILURE;
    }
    println!("perf check passed ({compared} benchmarks within {max_ratio}x)");
    ExitCode::SUCCESS
}
