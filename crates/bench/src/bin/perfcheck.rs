//! Perf-trajectory gate: compares a fresh `bench` run against the
//! committed baseline and fails (exit 1) if any benchmark shared by both
//! files regressed beyond the allowed ratio.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p distvliw-bench --bin perfcheck -- \
//!     BENCH_sched.ci.json BENCH_sched.baseline.json [max-ratio]
//! ```
//!
//! `max-ratio` defaults to 1.3 (a >1.3× median slowdown fails, the
//! threshold named in ROADMAP.md). Benchmark ids present in only one
//! file are reported but never fail the check, so adding a benchmark
//! does not require re-recording the baseline in the same change.
//! Improvements are reported too; they always pass.
//!
//! Ids under the `ejections/` prefix are not timings at all: they carry
//! the ejection-scheduler's raw eviction counts (see
//! docs/scheduling.md). Their deltas are *reported* so the trajectory
//! is visible in CI logs, but they never fail the gate — an ejection
//! count moving means the scheduler worked differently, which the
//! golden schedule snapshots already adjudicate.
//!
//! Besides the cross-run ratio, perfcheck enforces one *same-run*
//! invariant: for every `<prefix>/factored` id whose sibling
//! `<prefix>/naive` appears in the CURRENT file, the naive/factored
//! median speedup must reach [`MIN_PAIR_SPEEDUP`]. Both legs come from
//! one bench process seconds apart, so the gate is immune to the
//! machine drift that makes absolute medians on shared runners swing by
//! 1.5× between runs. The threshold is set from measurement, not
//! aspiration: the factored sweep's structural work reduction on the
//! default grid is 72 compiled schedule units instead of 180 and 108
//! simulated units instead of 180 (hybrid rows are derived, the
//! bus-count axis reuses schedules), which measures 2.0–2.1× serial on
//! a single core; 1.5 leaves drift margin below that. On multi-core
//! hosts `core::par` fans the independent cells out and the end-to-end
//! speedup grows with the worker count — the gate intentionally
//! encodes only the serial, structural floor.

use std::process::ExitCode;

use criterion::{results_from_json, BenchResult};

/// Default failure threshold: current/baseline median ratio above this
/// fails the gate.
const DEFAULT_MAX_RATIO: f64 = 1.3;

/// Minimum same-run `<prefix>/naive` over `<prefix>/factored` median
/// speedup (see the module docs for how this floor was measured).
const MIN_PAIR_SPEEDUP: f64 = 1.5;

fn load(path: &str) -> Result<Vec<BenchResult>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    results_from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path) = match &args[..] {
        [c, b] | [c, b, _] => (c.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: perfcheck CURRENT.json BASELINE.json [max-ratio]");
            return ExitCode::FAILURE;
        }
    };
    let max_ratio = match args.get(2) {
        None => DEFAULT_MAX_RATIO,
        Some(raw) => match raw.parse::<f64>() {
            Ok(r) if r > 0.0 => r,
            _ => {
                eprintln!("max-ratio must be a positive number, got `{raw}`");
                return ExitCode::FAILURE;
            }
        },
    };

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let mut compared = 0usize;
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.id == cur.id) else {
            println!("{:<32} (new: no baseline entry, skipped)", cur.id);
            continue;
        };
        if cur.id.starts_with("ejections/") {
            // Count rows, not timings: report the delta, never fail.
            let delta = cur.median_ns - base.median_ns;
            println!(
                "{:<32} {:>10.0} evictions vs {:>8.0} baseline  delta {delta:>+6.0}  (report-only)",
                cur.id, cur.median_ns, base.median_ns,
            );
            continue;
        }
        compared += 1;
        let ratio = cur.median_ns / base.median_ns;
        let verdict = if ratio > max_ratio {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{:<32} {:>10.3} ms vs {:>10.3} ms  ratio {ratio:>5.2}  {verdict}",
            cur.id,
            cur.median_ns / 1e6,
            base.median_ns / 1e6,
        );
    }
    for base in &baseline {
        if !current.iter().any(|c| c.id == base.id) {
            println!("{:<32} (missing from current run)", base.id);
        }
    }

    // Same-run speedup pairs: `<prefix>/factored` must beat its
    // `<prefix>/naive` sibling from the same bench process by
    // MIN_PAIR_SPEEDUP. Both medians come out of the CURRENT file only,
    // so this gate cannot be masked (or spuriously tripped) by machine
    // drift against an old baseline.
    for fac in &current {
        let Some(prefix) = fac.id.strip_suffix("/factored") else {
            continue;
        };
        let naive_id = format!("{prefix}/naive");
        let Some(naive) = current.iter().find(|c| c.id == naive_id) else {
            continue;
        };
        compared += 1;
        let speedup = naive.median_ns / fac.median_ns;
        let verdict = if speedup < MIN_PAIR_SPEEDUP {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{prefix:<32} same-run speedup {speedup:>5.2}x (naive {:.3} ms / factored {:.3} ms, floor {MIN_PAIR_SPEEDUP}x)  {verdict}",
            naive.median_ns / 1e6,
            fac.median_ns / 1e6,
        );
    }

    if compared == 0 {
        eprintln!("no benchmark ids in common between {current_path} and {baseline_path}");
        return ExitCode::FAILURE;
    }
    if failed {
        eprintln!(
            "perf regression: some medians exceed {max_ratio}x of baseline \
             or a same-run pair fell below {MIN_PAIR_SPEEDUP}x"
        );
        return ExitCode::FAILURE;
    }
    println!("perf check passed ({compared} checks within thresholds)");
    ExitCode::SUCCESS
}
