//! Reproduces **Table 4**: the ratio of DDGT to MDC communication
//! operations and the DDGT speedup on the selected loops (loops with at
//! least a 10% MDC slowdown versus the Free baseline), under PrefClus.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("table4")
}
