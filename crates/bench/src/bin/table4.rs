//! Reproduces **Table 4**: the ratio of DDGT to MDC communication
//! operations and the DDGT speedup on the selected loops (loops with at
//! least a 10% MDC slowdown versus the Free baseline), under PrefClus.

use distvliw_core::experiments::table4;
use distvliw_core::report::render_table4;

fn main() {
    let machine = distvliw_bench::paper_machine();
    match table4(&machine) {
        Ok(rows) => print!("{}", render_table4(&rows)),
        Err(e) => {
            eprintln!("table4 failed: {e}");
            std::process::exit(1);
        }
    }
}
