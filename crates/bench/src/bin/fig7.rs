//! Reproduces **Figure 7**: execution time (compute + stall, normalized
//! to the Free/MinComs baseline) for MDC and DDGT under both heuristics.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("fig7")
}
