//! Reproduces **Figure 7**: execution time (compute + stall, normalized
//! to the Free/MinComs baseline) for MDC and DDGT under both heuristics.

use distvliw_core::experiments::fig7;
use distvliw_core::report::render_exec;

fn main() {
    let machine = distvliw_bench::paper_machine();
    match fig7(&machine) {
        Ok(rows) => print!(
            "{}",
            render_exec(&rows, "Figure 7: normalized execution time")
        ),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
