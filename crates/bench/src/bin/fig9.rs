//! Reproduces **Figure 9**: execution time with 16-entry 2-way
//! Attraction Buffers (normalized to Free/MinComs with the same buffers).

use distvliw_core::experiments::fig9;
use distvliw_core::report::render_exec;

fn main() {
    let machine = distvliw_bench::paper_machine();
    match fig9(&machine) {
        Ok(rows) => print!(
            "{}",
            render_exec(
                &rows,
                "Figure 9: normalized execution time with Attraction Buffers"
            )
        ),
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            std::process::exit(1);
        }
    }
}
