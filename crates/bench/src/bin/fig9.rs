//! Reproduces **Figure 9**: execution time with 16-entry 2-way
//! Attraction Buffers (normalized to Free/MinComs with the same buffers).

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("fig9")
}
