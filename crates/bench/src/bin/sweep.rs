//! Prints the sensitivity sweep: the cluster-count (2/4/8/16) ×
//! memory-bus grid over the default workload mix, with per-cluster
//! imbalance and bus-occupancy columns for all four solutions.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("sweep")
}
