//! Runs every experiment of the paper's evaluation in order and prints
//! the full report (Figures 6, 7, 9; Tables 3, 4, 5; the NOBAL study and
//! the loop case studies). This is the one-shot generator behind
//! `EXPERIMENTS.md`.

use distvliw_arch::MachineConfig;
use distvliw_core::experiments;
use distvliw_core::report;

fn main() {
    let machine = distvliw_bench::paper_machine();

    println!("== Table 3 ==");
    print!("{}", report::render_table3(&experiments::table3()));

    println!("\n== Figure 6 ==");
    match experiments::fig6(&machine) {
        Ok(rows) => print!("{}", report::render_fig6(&rows)),
        Err(e) => eprintln!("fig6 failed: {e}"),
    }

    println!("\n== Figure 7 ==");
    match experiments::fig7(&machine) {
        Ok(rows) => print!(
            "{}",
            report::render_exec(&rows, "normalized execution time")
        ),
        Err(e) => eprintln!("fig7 failed: {e}"),
    }

    println!("\n== Table 4 ==");
    match experiments::table4(&machine) {
        Ok(rows) => print!("{}", report::render_table4(&rows)),
        Err(e) => eprintln!("table4 failed: {e}"),
    }

    println!("\n== Table 5 ==");
    print!("{}", report::render_table5(&experiments::table5()));

    println!("\n== Figure 9 ==");
    match experiments::fig9(&machine) {
        Ok(rows) => {
            print!(
                "{}",
                report::render_exec(&rows, "normalized execution time with ABs")
            );
        }
        Err(e) => eprintln!("fig9 failed: {e}"),
    }

    println!("\n== NOBAL study ==");
    for (m, title) in [
        (MachineConfig::nobal_mem(), "NOBAL+MEM"),
        (MachineConfig::nobal_reg(), "NOBAL+REG"),
    ] {
        match experiments::nobal(&m) {
            Ok(rows) => println!("{}", report::render_nobal(&rows, title)),
            Err(e) => eprintln!("nobal failed: {e}"),
        }
    }

    println!("\n== Case studies ==");
    match experiments::gsmdec_case_study(&machine) {
        Ok(cs) => println!("{}", report::render_case_study(&cs)),
        Err(e) => eprintln!("gsmdec case study failed: {e}"),
    }
    match experiments::epicdec_ab_case_study(&machine) {
        Ok(cs) => println!(
            "(with Attraction Buffers)\n{}",
            report::render_case_study(&cs)
        ),
        Err(e) => eprintln!("epicdec case study failed: {e}"),
    }
}
