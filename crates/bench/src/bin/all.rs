//! Runs every experiment of the paper's evaluation in order and prints
//! the full report (Figures 6, 7, 9; Tables 3, 4, 5; the NOBAL study,
//! the loop case studies, the hybrid solution and the cluster-imbalance
//! breakdown). This is the one-shot generator behind `EXPERIMENTS.md`.

fn main() -> std::process::ExitCode {
    let machine = distvliw_bench::paper_machine();
    let mut failed = false;
    for (i, name) in distvliw_bench::EXPERIMENTS.iter().enumerate() {
        if i > 0 {
            println!();
        }
        // Each report opens with its own title line, so no extra
        // heading is printed here.
        match distvliw_bench::report(name, &machine) {
            Ok(text) => print!("{text}"),
            Err(err) => {
                eprintln!("{err}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
