//! Reproduces the two loop **case studies**: the gsmdec selected loop of
//! Section 4.2 (DDGT eliminates its stall time) and the epicdec
//! 76-memory-op chain loop of Section 5.4 (DDGT spreads the chain over
//! all four Attraction Buffers).

use distvliw_core::experiments::{epicdec_ab_case_study, gsmdec_case_study};
use distvliw_core::report::render_case_study;

fn main() {
    let machine = distvliw_bench::paper_machine();
    match gsmdec_case_study(&machine) {
        Ok(cs) => println!("{}", render_case_study(&cs)),
        Err(e) => {
            eprintln!("gsmdec case study failed: {e}");
            std::process::exit(1);
        }
    }
    match epicdec_ab_case_study(&machine) {
        Ok(cs) => println!("(with Attraction Buffers)\n{}", render_case_study(&cs)),
        Err(e) => {
            eprintln!("epicdec case study failed: {e}");
            std::process::exit(1);
        }
    }
}
