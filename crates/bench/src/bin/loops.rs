//! Reproduces the two loop **case studies**: the gsmdec selected loop of
//! Section 4.2 (DDGT eliminates its stall time) and the epicdec
//! 76-memory-op chain loop of Section 5.4 (DDGT spreads the chain over
//! all four Attraction Buffers).

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("loops")
}
