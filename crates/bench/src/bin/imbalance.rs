//! Per-cluster **imbalance** report: the share of memory accesses each
//! cluster issued, the busiest-over-mean imbalance ratio, the
//! per-cluster coherence-violation split and the bus / next-level grant
//! pressure, for MDC and DDGT under PrefClus.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("imbalance")
}
