//! Reproduces **Table 3**: the biggest-chain ratios CMR and CAR per
//! benchmark, next to the paper's published values.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("table3")
}
