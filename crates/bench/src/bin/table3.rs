//! Reproduces **Table 3**: the biggest-chain ratios CMR and CAR per
//! benchmark, next to the paper's published values.

use distvliw_core::experiments::table3;
use distvliw_core::report::render_table3;

fn main() {
    print!("{}", render_table3(&table3()));
}
