//! Reproduces **Figure 6**: classification of memory accesses into local
//! hits, remote hits, local misses, remote misses and combined accesses
//! under the PrefClus heuristic, for Free / MDC / DDGT.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("fig6")
}
