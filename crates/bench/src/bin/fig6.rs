//! Reproduces **Figure 6**: classification of memory accesses into local
//! hits, remote hits, local misses, remote misses and combined accesses
//! under the PrefClus heuristic, for Free / MDC / DDGT.

use distvliw_core::experiments::fig6;
use distvliw_core::report::render_fig6;

fn main() {
    let machine = distvliw_bench::paper_machine();
    match fig6(&machine) {
        Ok(rows) => print!("{}", render_fig6(&rows)),
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
