//! Golden-grid verification: runs the independent static checker
//! (`distvliw-check`) over every configuration the golden snapshot
//! tests pin, and reports a per-violation-kind summary.
//!
//! Three grids, mirroring the tier-1 test files exactly:
//!
//! * **parity** — the 312 4-cluster configurations of
//!   `tests/golden_parity.rs`: every bundled Mediabench kernel × both
//!   heuristics × {free, mdc, ddgt} × {relaxed, strict} latencies.
//! * **scale** — the 84 large-machine configurations of
//!   `tests/golden_scale.rs`: 8- and 16-cluster sweep machines over the
//!   pinned mixed workload.
//! * **seed-ii** — the 120 sweep cells of `tests/paper_shapes.rs`
//!   (`ejection_scheduler_never_regresses_an_ii`): the default sweep
//!   suites × {2, 4, 8, 16} clusters × both heuristics × all three
//!   solutions, every kernel in every cell.
//!
//! Every schedule these grids produce must verify clean; any violation
//! is a scheduler bug (or a checker bug — see docs/checking.md for how
//! to adjudicate). Exits nonzero when any configuration fails.
//!
//! Usage: `cargo run --release -p distvliw-bench --bin check`

use std::collections::BTreeMap;
use std::process::ExitCode;

use distvliw_arch::MachineConfig;
use distvliw_check::check_schedule;
use distvliw_coherence::{find_chains, transform, SchedConstraints};
use distvliw_core::experiments::{sweep_default_suites, sweep_machine};
use distvliw_ir::profile::preferred_clusters;
use distvliw_ir::{LoopKernel, Suite};
use distvliw_mediabench as mediabench;
use distvliw_sched::{Heuristic, ModuloScheduler};

/// How many failing configurations to print in full before eliding.
const MAX_REPORTS: usize = 20;

/// Accumulated results across all grids.
#[derive(Default)]
struct Tally {
    /// Configurations checked (one compiled schedule each).
    configs: usize,
    /// Configurations with at least one violation.
    dirty: usize,
    /// Total violations by kind name.
    by_kind: BTreeMap<&'static str, usize>,
    /// Pretty-printed reports of failing configurations.
    reports: Vec<String>,
}

impl Tally {
    /// Schedules one (kernel, solution, heuristic, relax) configuration
    /// the same way the golden tests do and verifies it.
    fn check_config(
        &mut self,
        machine: &MachineConfig,
        label: &str,
        kernel: &LoopKernel,
        solution: &str,
        heuristic: Heuristic,
        relax: bool,
    ) {
        let prefs = preferred_clusters(kernel, machine.n_clusters, |a| machine.home_cluster(a));
        let mut kernel = kernel.clone();
        let constraints = match solution {
            "free" => SchedConstraints::none(),
            "mdc" => {
                let chains = find_chains(&kernel.ddg);
                let pref_arg = (heuristic == Heuristic::PrefClus).then_some(&prefs);
                SchedConstraints::for_mdc(&chains, &kernel.ddg, pref_arg, machine.n_clusters)
            }
            _ => {
                let report = transform(&mut kernel.ddg, machine.n_clusters);
                SchedConstraints::for_ddgt(&report)
            }
        };
        let schedule = ModuloScheduler::new(machine)
            .with_latency_relaxation(relax)
            .schedule(&kernel.ddg, &constraints, &prefs, heuristic)
            .expect("golden-grid kernels always schedule");
        let report = check_schedule(&kernel.ddg, machine, &constraints, heuristic, &schedule);
        self.configs += 1;
        if !report.is_clean() {
            self.dirty += 1;
            for (kind, n) in report.counts() {
                *self.by_kind.entry(kind.name()).or_insert(0) += n;
            }
            self.reports.push(format!(
                "{label} {}/{solution}/{heuristic} relax={relax}: {report}",
                kernel.name
            ));
        }
    }
}

/// Grid 1: the 4-cluster parity grid of `tests/golden_parity.rs`.
fn parity_grid(tally: &mut Tally) -> usize {
    let before = tally.configs;
    for suite in mediabench::suites() {
        let machine = MachineConfig::paper_baseline().with_interleave(suite.interleave_bytes);
        for kernel in &suite.kernels {
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                for solution in ["free", "mdc", "ddgt"] {
                    for relax in [true, false] {
                        tally.check_config(
                            &machine,
                            &format!("parity {}", suite.name),
                            kernel,
                            solution,
                            heuristic,
                            relax,
                        );
                    }
                }
            }
        }
    }
    tally.configs - before
}

/// The pinned workload of `tests/golden_scale.rs`.
fn pinned_suites() -> Vec<Suite> {
    let mut suites = vec![
        mediabench::suite("gsmdec").expect("bundled benchmark"),
        mediabench::suite("jpegenc").expect("bundled benchmark"),
    ];
    suites.extend(mediabench::trace_suites());
    suites
}

/// Grid 2: the 8/16-cluster scale grid of `tests/golden_scale.rs`.
fn scale_grid(tally: &mut Tally) -> usize {
    let before = tally.configs;
    let base = MachineConfig::paper_baseline();
    for n_clusters in [8usize, 16] {
        for suite in pinned_suites() {
            let machine = sweep_machine(&base, n_clusters, base.mem_buses)
                .with_interleave(suite.interleave_bytes);
            for kernel in &suite.kernels {
                for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                    for solution in ["free", "mdc", "ddgt"] {
                        tally.check_config(
                            &machine,
                            &format!("scale n={n_clusters} {}", suite.name),
                            kernel,
                            solution,
                            heuristic,
                            true,
                        );
                    }
                }
            }
        }
    }
    tally.configs - before
}

/// Grid 3: the 120 seed-II configurations of `tests/paper_shapes.rs`
/// (`ejection_scheduler_never_regresses_an_ii`) — every kernel in every
/// (suite, cluster count, solution, heuristic) sweep cell.
fn seed_ii_grid(tally: &mut Tally) -> usize {
    let before = tally.configs;
    let base = MachineConfig::paper_baseline();
    for suite in sweep_default_suites() {
        for n_clusters in [2usize, 4, 8, 16] {
            let machine = sweep_machine(&base, n_clusters, base.mem_buses)
                .with_interleave(suite.interleave_bytes);
            for solution in ["free", "mdc", "ddgt"] {
                for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                    for kernel in &suite.kernels {
                        tally.check_config(
                            &machine,
                            &format!("seed-ii n={n_clusters} {}", suite.name),
                            kernel,
                            solution,
                            heuristic,
                            true,
                        );
                    }
                }
            }
        }
    }
    tally.configs - before
}

fn main() -> ExitCode {
    let mut tally = Tally::default();

    let parity = parity_grid(&mut tally);
    println!("parity grid:  {parity} configurations");
    let scale = scale_grid(&mut tally);
    println!("scale grid:   {scale} configurations");
    let seed_ii = seed_ii_grid(&mut tally);
    println!("seed-ii grid: {seed_ii} configurations");

    println!("checked {} schedules total", tally.configs);
    if tally.dirty == 0 {
        println!("check: clean");
        return ExitCode::SUCCESS;
    }

    eprintln!("check: {} configurations with violations", tally.dirty);
    eprintln!("violations by kind:");
    for (kind, n) in &tally.by_kind {
        eprintln!("  {kind}: {n}");
    }
    for report in tally.reports.iter().take(MAX_REPORTS) {
        eprintln!("{report}");
    }
    if tally.reports.len() > MAX_REPORTS {
        eprintln!("… and {} more", tally.reports.len() - MAX_REPORTS);
    }
    ExitCode::FAILURE
}
