//! The **hybrid solution** sketched in paper Section 6 ("a hybrid
//! solution that combines the best of DDGT and MDC ... the execution time
//! of a loop with both solutions could be estimated at compile time and
//! the best solution could be chosen"), evaluated per benchmark against
//! pure MDC and pure DDGT.

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("hybrid")
}
