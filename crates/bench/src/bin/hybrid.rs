//! The **hybrid solution** sketched in paper Section 6 ("a hybrid
//! solution that combines the best of DDGT and MDC ... the execution time
//! of a loop with both solutions could be estimated at compile time and
//! the best solution could be chosen"), evaluated per benchmark against
//! pure MDC and pure DDGT.

use distvliw_core::{Heuristic, Pipeline, Solution};

fn main() {
    let machine = distvliw_bench::paper_machine();
    let pipeline = Pipeline::new(machine);
    println!("Hybrid solution (per-loop best of MDC/DDGT, PrefClus)");
    println!(
        "{:<10} | {:>10} {:>10} {:>10} | {:>10}",
        "benchmark", "MDC", "DDGT", "Hybrid", "gain"
    );
    for suite in distvliw_mediabench::figure_suites() {
        let run = |s| {
            pipeline
                .run_suite(&suite, s, Heuristic::PrefClus)
                .map(|r| r.total_cycles())
        };
        match (
            run(Solution::Mdc),
            run(Solution::Ddgt),
            run(Solution::Hybrid),
        ) {
            (Ok(mdc), Ok(ddgt), Ok(hybrid)) => {
                let best_pure = mdc.min(ddgt);
                let gain = best_pure as f64 / hybrid.max(1) as f64 - 1.0;
                println!(
                    "{:<10} | {:>10} {:>10} {:>10} | {:>9.1}%",
                    suite.name,
                    mdc,
                    ddgt,
                    hybrid,
                    gain * 100.0
                );
            }
            (a, b, c) => {
                eprintln!("{}: {a:?} {b:?} {c:?}", suite.name);
                std::process::exit(1);
            }
        }
    }
}
