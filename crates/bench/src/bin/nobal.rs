//! Reproduces the **"Other architectural configurations"** study of
//! Section 4.2: NOBAL+MEM (4×2-cycle memory buses, 2×4-cycle register
//! buses) and NOBAL+REG (2×4-cycle memory buses, 4×2-cycle register
//! buses).

use distvliw_arch::MachineConfig;
use distvliw_core::experiments::nobal;
use distvliw_core::report::render_nobal;

fn main() {
    for (machine, title) in [
        (
            MachineConfig::nobal_mem(),
            "NOBAL+MEM: more memory buses than register buses",
        ),
        (
            MachineConfig::nobal_reg(),
            "NOBAL+REG: more register buses than memory buses",
        ),
    ] {
        match nobal(&machine) {
            Ok(rows) => println!("{}", render_nobal(&rows, title)),
            Err(e) => {
                eprintln!("nobal failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
