//! Reproduces the **"Other architectural configurations"** study of
//! Section 4.2: NOBAL+MEM (4×2-cycle memory buses, 2×4-cycle register
//! buses) and NOBAL+REG (2×4-cycle memory buses, 4×2-cycle register
//! buses).

fn main() -> std::process::ExitCode {
    distvliw_bench::run_experiment_main("nobal")
}
