//! Latency classes and access classification.

use std::fmt;

/// The four latencies a memory access can be satisfied with (paper
/// Section 2.1). The scheduler assigns one of these to each memory
/// instruction; the simulator then observes the access's *actual* class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LatencyClass {
    /// The address maps to the local cache module and hits.
    LocalHit,
    /// The address maps to a remote cache module and hits there.
    RemoteHit,
    /// The address maps to the local cache module and misses.
    LocalMiss,
    /// The address maps to a remote cache module and misses there.
    RemoteMiss,
}

impl LatencyClass {
    /// All classes ordered from smallest to largest latency under the
    /// paper's Table 2 parameters.
    pub const ASCENDING: [LatencyClass; 4] = [
        LatencyClass::LocalHit,
        LatencyClass::RemoteHit,
        LatencyClass::LocalMiss,
        LatencyClass::RemoteMiss,
    ];
}

impl fmt::Display for LatencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LatencyClass::LocalHit => "local-hit",
            LatencyClass::RemoteHit => "remote-hit",
            LatencyClass::LocalMiss => "local-miss",
            LatencyClass::RemoteMiss => "remote-miss",
        };
        f.write_str(s)
    }
}

/// The classification of an executed access used by the evaluation's
/// Figure 6: the four [`LatencyClass`] outcomes plus *combined* accesses —
/// "accesses to subblocks that have been already requested and are still
/// pending, and hence the second request is not issued" (paper
/// Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessClass {
    /// Local cache-module hit.
    LocalHit,
    /// Remote cache-module hit.
    RemoteHit,
    /// Local cache-module miss.
    LocalMiss,
    /// Remote cache-module miss.
    RemoteMiss,
    /// Piggy-backed on an in-flight request to the same subblock.
    Combined,
}

impl AccessClass {
    /// All classes, in Figure 6's legend order.
    pub const ALL: [AccessClass; 5] = [
        AccessClass::LocalHit,
        AccessClass::RemoteHit,
        AccessClass::LocalMiss,
        AccessClass::RemoteMiss,
        AccessClass::Combined,
    ];

    /// Dense index matching [`AccessClass::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            AccessClass::LocalHit => 0,
            AccessClass::RemoteHit => 1,
            AccessClass::LocalMiss => 2,
            AccessClass::RemoteMiss => 3,
            AccessClass::Combined => 4,
        }
    }

    /// Whether the access was satisfied locally (hit or miss).
    #[must_use]
    pub fn is_local(self) -> bool {
        matches!(self, AccessClass::LocalHit | AccessClass::LocalMiss)
    }
}

impl From<LatencyClass> for AccessClass {
    fn from(c: LatencyClass) -> Self {
        match c {
            LatencyClass::LocalHit => AccessClass::LocalHit,
            LatencyClass::RemoteHit => AccessClass::RemoteHit,
            LatencyClass::LocalMiss => AccessClass::LocalMiss,
            LatencyClass::RemoteMiss => AccessClass::RemoteMiss,
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessClass::LocalHit => "local-hit",
            AccessClass::RemoteHit => "remote-hit",
            AccessClass::LocalMiss => "local-miss",
            AccessClass::RemoteMiss => "remote-miss",
            AccessClass::Combined => "combined",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_order_is_total_under_paper_latencies() {
        use crate::MachineConfig;
        let m = MachineConfig::paper_baseline();
        let lats: Vec<u32> = LatencyClass::ASCENDING
            .iter()
            .map(|&c| m.latency_of(c))
            .collect();
        assert!(lats.windows(2).all(|w| w[0] <= w[1]), "{lats:?}");
    }

    #[test]
    fn access_class_indices_dense() {
        for (i, c) in AccessClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn locality_predicate() {
        assert!(AccessClass::LocalHit.is_local());
        assert!(AccessClass::LocalMiss.is_local());
        assert!(!AccessClass::RemoteHit.is_local());
        assert!(!AccessClass::Combined.is_local());
    }

    #[test]
    fn conversion_from_latency_class() {
        assert_eq!(
            AccessClass::from(LatencyClass::RemoteMiss),
            AccessClass::RemoteMiss
        );
    }
}
