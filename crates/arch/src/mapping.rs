//! Address → cluster / block / subblock mapping.

use std::fmt;

use crate::config::MachineConfig;

/// Identifies one cluster's slice of one cache block: the unit cached by
/// cache modules and transferred to Attraction Buffers (paper Section 5:
/// "when a cluster issues a remote request to another cluster, the whole
/// remote subblock is returned").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubblockId {
    /// The cache block number (`addr / block_bytes`).
    pub block: u64,
    /// The cluster owning this slice of the block.
    pub home: usize,
}

impl fmt::Display for SubblockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}@cl{}", self.block, self.home)
    }
}

impl MachineConfig {
    /// The cluster whose cache module holds `addr` (the access's *home
    /// cluster*): interleaving units round-robin across clusters.
    #[must_use]
    pub fn home_cluster(&self, addr: u64) -> usize {
        ((addr / self.interleave_bytes) % self.n_clusters as u64) as usize
    }

    /// The cache block number containing `addr`.
    #[must_use]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.cache.block_bytes
    }

    /// The subblock containing `addr`.
    #[must_use]
    pub fn subblock_of(&self, addr: u64) -> SubblockId {
        SubblockId {
            block: self.block_of(addr),
            home: self.home_cluster(addr),
        }
    }

    /// The set index of `block` within a cache module.
    #[must_use]
    pub fn module_set_of(&self, block: u64) -> usize {
        (block % self.module_sets() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_interleave_round_robins() {
        let m = MachineConfig::paper_baseline(); // interleave 4B, 4 clusters
        assert_eq!(m.home_cluster(0), 0);
        assert_eq!(m.home_cluster(4), 1);
        assert_eq!(m.home_cluster(8), 2);
        assert_eq!(m.home_cluster(12), 3);
        assert_eq!(m.home_cluster(16), 0);
        // Within one interleave unit the home is constant.
        assert_eq!(m.home_cluster(5), 1);
        assert_eq!(m.home_cluster(7), 1);
    }

    #[test]
    fn figure1_subblock_example() {
        // Paper Figure 1: 4 clusters, 8-word blocks, 1-word interleave —
        // words 0 and 4 of a block both map to cluster 1 (index 0).
        let m = MachineConfig::paper_baseline();
        let block_base = 3 * m.cache.block_bytes; // some arbitrary block
        let w0 = block_base;
        let w4 = block_base + 16;
        assert_eq!(m.home_cluster(w0), m.home_cluster(w4));
        assert_eq!(m.subblock_of(w0), m.subblock_of(w4));
        // Words 1 and 5 share a different home.
        let w1 = block_base + 4;
        let w5 = block_base + 20;
        assert_eq!(m.subblock_of(w1), m.subblock_of(w5));
        assert_ne!(m.subblock_of(w0).home, m.subblock_of(w1).home);
    }

    #[test]
    fn two_byte_interleave() {
        let m = MachineConfig::paper_baseline().with_interleave(2);
        assert_eq!(m.home_cluster(0), 0);
        assert_eq!(m.home_cluster(2), 1);
        assert_eq!(m.home_cluster(6), 3);
        assert_eq!(m.home_cluster(8), 0);
    }

    #[test]
    fn blocks_and_sets() {
        let m = MachineConfig::paper_baseline();
        assert_eq!(m.block_of(0), 0);
        assert_eq!(m.block_of(31), 0);
        assert_eq!(m.block_of(32), 1);
        // Sets wrap modulo module_sets.
        assert_eq!(m.module_set_of(0), m.module_set_of(m.module_sets() as u64));
    }

    #[test]
    fn same_block_spans_all_clusters() {
        let m = MachineConfig::paper_baseline();
        let homes: std::collections::BTreeSet<usize> = (0..m.cache.block_bytes)
            .step_by(4)
            .map(|off| m.home_cluster(off))
            .collect();
        assert_eq!(homes.len(), m.n_clusters);
    }
}
