//! Machine configuration and the paper's presets.

use std::fmt;

use crate::latency::LatencyClass;

/// Version of [`MachineConfig::canonical_bytes`]; bump when the encoded
/// field set or order changes. Every consumer that stores canonical
/// encodings durably (the serving layer's on-disk state, see
/// `docs/persistence.md`) folds this into its era fingerprint, so a bump
/// here invalidates every persisted store instead of letting stale
/// encodings alias fresh ones.
pub const CANONICAL_BYTES_VERSION: u8 = 2;

/// Version of [`MachineConfig::sched_canonical_bytes`]; bump when the
/// scheduler starts reading a new field. Part of the same durable-state
/// era as [`CANONICAL_BYTES_VERSION`] (the II-seed store keys embed this
/// projection).
pub const SCHED_CANONICAL_BYTES_VERSION: u8 = 1;

/// A set of identical shared buses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusConfig {
    /// Number of buses.
    pub count: usize,
    /// Transfer latency in core cycles; a bus is busy for this long per
    /// transfer ("buses run at 1/2 of the core frequency" ⇒ 2 cycles).
    pub latency: u32,
}

/// Geometry of the distributed first-level data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity across all modules in bytes (paper: 8KB).
    pub total_bytes: u64,
    /// Cache block size in bytes (paper: 32).
    pub block_bytes: u64,
    /// Set associativity of each module (paper: 2).
    pub assoc: usize,
    /// Module access latency in cycles (paper: 1).
    pub latency: u32,
}

/// The always-hitting next memory level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NextLevelConfig {
    /// Number of simultaneous requests serviced per cycle (paper: 4).
    pub ports: usize,
    /// Total access latency in cycles (paper: 10).
    pub latency: u32,
}

/// Per-cluster Attraction Buffer geometry (paper Section 5: 16-entry,
/// 2-way set-associative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttractionBufferConfig {
    /// Number of subblock entries.
    pub entries: usize,
    /// Set associativity.
    pub assoc: usize,
}

impl AttractionBufferConfig {
    /// The paper's evaluated configuration: 16 entries, 2-way.
    #[must_use]
    pub fn paper() -> Self {
        AttractionBufferConfig {
            entries: 16,
            assoc: 2,
        }
    }
}

/// Functional units per cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuMix {
    /// Integer ALUs.
    pub integer: usize,
    /// Floating-point units.
    pub fp: usize,
    /// Memory (load/store) units.
    pub memory: usize,
}

impl FuMix {
    /// The paper's mix: one of each per cluster.
    #[must_use]
    pub fn paper() -> Self {
        FuMix {
            integer: 1,
            fp: 1,
            memory: 1,
        }
    }
}

/// Errors reported by [`MachineConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Zero clusters, buses, ports, units or sizes where positives are
    /// required.
    ZeroResource(&'static str),
    /// The cache geometry does not divide evenly across clusters
    /// (`block_bytes` must be a multiple of `n_clusters × interleave`).
    UnevenInterleave,
    /// Total cache capacity does not split evenly into per-cluster modules
    /// of whole sets.
    UnevenCapacity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroResource(what) => write!(f, "{what} must be positive"),
            ConfigError::UnevenInterleave => write!(
                f,
                "cache block size must be a multiple of n_clusters × interleave_bytes"
            ),
            ConfigError::UnevenCapacity => {
                write!(
                    f,
                    "cache capacity must split evenly into per-cluster modules"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full description of a word-interleaved cache clustered VLIW machine.
///
/// Construct via [`MachineConfig::paper_baseline`] (Table 2) or the NOBAL
/// presets and adjust fields with the `with_*` builders. All runs in this
/// workspace validate the configuration before use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of clusters (paper: 4).
    pub n_clusters: usize,
    /// Functional units per cluster.
    pub fu: FuMix,
    /// Distributed data cache geometry.
    pub cache: CacheConfig,
    /// Register-to-register communication buses.
    pub reg_buses: BusConfig,
    /// Memory buses between clusters and cache modules / next level.
    pub mem_buses: BusConfig,
    /// The next memory level.
    pub next_level: NextLevelConfig,
    /// Interleaving factor in bytes (paper Table 1: 2 or 4 per benchmark).
    pub interleave_bytes: u64,
    /// Attraction Buffers, if present (paper Section 5).
    pub attraction_buffers: Option<AttractionBufferConfig>,
    /// General-purpose registers per cluster. The scheduler's stage-aware
    /// pressure model charges a live range crossing `k` stage boundaries
    /// `k + 1` registers and rejects placements that would exceed this
    /// budget (instead of letting the overflow surface later as
    /// unschedulable spill traffic).
    pub regs_per_cluster: usize,
}

impl MachineConfig {
    /// The paper's Table 2 configuration with a 4-byte interleave and no
    /// Attraction Buffers.
    #[must_use]
    pub fn paper_baseline() -> Self {
        MachineConfig {
            n_clusters: 4,
            fu: FuMix::paper(),
            cache: CacheConfig {
                total_bytes: 8 * 1024,
                block_bytes: 32,
                assoc: 2,
                latency: 1,
            },
            reg_buses: BusConfig {
                count: 4,
                latency: 2,
            },
            mem_buses: BusConfig {
                count: 4,
                latency: 2,
            },
            next_level: NextLevelConfig {
                ports: 4,
                latency: 10,
            },
            interleave_bytes: 4,
            attraction_buffers: None,
            regs_per_cluster: 64,
        }
    }

    /// The unbalanced configuration with more memory than register buses
    /// (paper Section 4.2, NOBAL+MEM): four 2-cycle memory buses, two
    /// 4-cycle register buses.
    #[must_use]
    pub fn nobal_mem() -> Self {
        MachineConfig {
            reg_buses: BusConfig {
                count: 2,
                latency: 4,
            },
            mem_buses: BusConfig {
                count: 4,
                latency: 2,
            },
            ..MachineConfig::paper_baseline()
        }
    }

    /// The unbalanced configuration with more register than memory buses
    /// (paper Section 4.2, NOBAL+REG): two 4-cycle memory buses, four
    /// 2-cycle register buses.
    #[must_use]
    pub fn nobal_reg() -> Self {
        MachineConfig {
            reg_buses: BusConfig {
                count: 4,
                latency: 2,
            },
            mem_buses: BusConfig {
                count: 2,
                latency: 4,
            },
            ..MachineConfig::paper_baseline()
        }
    }

    /// Returns the configuration with the given interleaving factor.
    #[must_use]
    pub fn with_interleave(mut self, bytes: u64) -> Self {
        self.interleave_bytes = bytes;
        self
    }

    /// Returns the configuration with Attraction Buffers enabled.
    #[must_use]
    pub fn with_attraction_buffers(mut self, ab: AttractionBufferConfig) -> Self {
        self.attraction_buffers = Some(ab);
        self
    }

    /// Returns the configuration with the given register-bus setup.
    #[must_use]
    pub fn with_reg_buses(mut self, buses: BusConfig) -> Self {
        self.reg_buses = buses;
        self
    }

    /// Returns the configuration with the given memory-bus setup.
    #[must_use]
    pub fn with_mem_buses(mut self, buses: BusConfig) -> Self {
        self.mem_buses = buses;
        self
    }

    /// Returns the configuration with the given per-cluster register
    /// file size.
    #[must_use]
    pub fn with_regs_per_cluster(mut self, regs: usize) -> Self {
        self.regs_per_cluster = regs;
        self
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_clusters == 0 {
            return Err(ConfigError::ZeroResource("n_clusters"));
        }
        if self.fu.memory == 0 || self.fu.integer == 0 {
            return Err(ConfigError::ZeroResource("functional units"));
        }
        if self.reg_buses.count == 0 || self.mem_buses.count == 0 {
            return Err(ConfigError::ZeroResource("buses"));
        }
        if self.reg_buses.latency == 0 || self.mem_buses.latency == 0 {
            return Err(ConfigError::ZeroResource("bus latency"));
        }
        if self.next_level.ports == 0 {
            return Err(ConfigError::ZeroResource("next-level ports"));
        }
        if self.regs_per_cluster == 0 {
            return Err(ConfigError::ZeroResource("registers per cluster"));
        }
        if self.interleave_bytes == 0
            || self.cache.block_bytes == 0
            || self.cache.total_bytes == 0
            || self.cache.assoc == 0
        {
            return Err(ConfigError::ZeroResource("cache geometry"));
        }
        let stripe = self.n_clusters as u64 * self.interleave_bytes;
        if !self.cache.block_bytes.is_multiple_of(stripe) {
            return Err(ConfigError::UnevenInterleave);
        }
        if !self
            .cache
            .total_bytes
            .is_multiple_of(self.n_clusters as u64)
        {
            return Err(ConfigError::UnevenCapacity);
        }
        let module_bytes = self.cache.total_bytes / self.n_clusters as u64;
        let line = self.subblock_bytes() * self.cache.assoc as u64;
        if line == 0 || !module_bytes.is_multiple_of(line) {
            return Err(ConfigError::UnevenCapacity);
        }
        Ok(())
    }

    /// A canonical, versioned byte encoding of every field, suitable for
    /// content-addressed hashing (the serving layer's result-cache keys).
    ///
    /// Two configurations encode to the same bytes **iff** they compare
    /// equal: every field — including the Attraction-Buffer option — is
    /// appended in a fixed order as fixed-width little-endian integers,
    /// with a leading format version ([`CANONICAL_BYTES_VERSION`]) so a
    /// future field addition changes every key instead of silently
    /// aliasing old entries.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.push(CANONICAL_BYTES_VERSION);
        let mut u64le = |v: u64| out.extend_from_slice(&v.to_le_bytes());
        u64le(self.n_clusters as u64);
        u64le(self.fu.integer as u64);
        u64le(self.fu.fp as u64);
        u64le(self.fu.memory as u64);
        u64le(self.cache.total_bytes);
        u64le(self.cache.block_bytes);
        u64le(self.cache.assoc as u64);
        u64le(u64::from(self.cache.latency));
        u64le(self.reg_buses.count as u64);
        u64le(u64::from(self.reg_buses.latency));
        u64le(self.mem_buses.count as u64);
        u64le(u64::from(self.mem_buses.latency));
        u64le(self.next_level.ports as u64);
        u64le(u64::from(self.next_level.latency));
        u64le(self.interleave_bytes);
        u64le(self.regs_per_cluster as u64);
        match self.attraction_buffers {
            None => u64le(0),
            Some(ab) => {
                u64le(1);
                u64le(ab.entries as u64);
                u64le(ab.assoc as u64);
            }
        }
        out
    }

    /// A canonical byte encoding of only the fields the modulo scheduler
    /// reads: cluster count, functional-unit mix, register buses,
    /// registers per cluster, the interleaving factor (which fixes the
    /// home cluster of every address, and with it the profile
    /// preferences), and the three latencies behind
    /// [`MachineConfig::latency_of`] (cache, memory-bus and next-level).
    ///
    /// Two configurations with equal projections produce byte-identical
    /// schedules — and identical search telemetry — for any kernel,
    /// because the scheduler never reads the remaining fields (memory-bus
    /// *count*, cache geometry, next-level ports, Attraction Buffers are
    /// simulation-only). The sweep runner keys its schedule artifacts on
    /// this projection so grid cells that differ only in sim-only axes
    /// share one compile.
    #[must_use]
    pub fn sched_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.push(SCHED_CANONICAL_BYTES_VERSION);
        let mut u64le = |v: u64| out.extend_from_slice(&v.to_le_bytes());
        u64le(self.n_clusters as u64);
        u64le(self.fu.integer as u64);
        u64le(self.fu.fp as u64);
        u64le(self.fu.memory as u64);
        u64le(self.reg_buses.count as u64);
        u64le(u64::from(self.reg_buses.latency));
        u64le(self.regs_per_cluster as u64);
        u64le(self.interleave_bytes);
        u64le(u64::from(self.cache.latency));
        u64le(u64::from(self.mem_buses.latency));
        u64le(u64::from(self.next_level.latency));
        out
    }

    /// Bytes of each cache block held by one cluster ("subblock", paper
    /// Section 2.1).
    #[must_use]
    pub fn subblock_bytes(&self) -> u64 {
        self.cache.block_bytes / self.n_clusters as u64
    }

    /// Per-module capacity in bytes.
    #[must_use]
    pub fn module_bytes(&self) -> u64 {
        self.cache.total_bytes / self.n_clusters as u64
    }

    /// Number of sets in each cache module.
    #[must_use]
    pub fn module_sets(&self) -> usize {
        (self.module_bytes() / (self.subblock_bytes() * self.cache.assoc as u64)) as usize
    }

    /// The latency in cycles of an access satisfied with the given class:
    /// module latency, plus a bus round trip for remote accesses, plus the
    /// next-level latency for misses.
    #[must_use]
    pub fn latency_of(&self, class: LatencyClass) -> u32 {
        let bus_round_trip = 2 * self.mem_buses.latency;
        match class {
            LatencyClass::LocalHit => self.cache.latency,
            LatencyClass::RemoteHit => self.cache.latency + bus_round_trip,
            LatencyClass::LocalMiss => self.cache.latency + self.next_level.latency,
            LatencyClass::RemoteMiss => {
                self.cache.latency + bus_round_trip + self.next_level.latency
            }
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_is_valid_and_matches_table2() {
        let m = MachineConfig::paper_baseline();
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(m.n_clusters, 4);
        assert_eq!(m.module_bytes(), 2048);
        assert_eq!(m.subblock_bytes(), 8);
        // 2KB module / (8B line × 2 ways) = 128 sets.
        assert_eq!(m.module_sets(), 128);
    }

    #[test]
    fn paper_latencies() {
        let m = MachineConfig::paper_baseline();
        assert_eq!(m.latency_of(LatencyClass::LocalHit), 1);
        assert_eq!(m.latency_of(LatencyClass::RemoteHit), 5);
        assert_eq!(m.latency_of(LatencyClass::LocalMiss), 11);
        assert_eq!(m.latency_of(LatencyClass::RemoteMiss), 15);
    }

    #[test]
    fn nobal_presets() {
        let mem = MachineConfig::nobal_mem();
        assert_eq!(mem.validate(), Ok(()));
        assert_eq!(
            mem.mem_buses,
            BusConfig {
                count: 4,
                latency: 2
            }
        );
        assert_eq!(
            mem.reg_buses,
            BusConfig {
                count: 2,
                latency: 4
            }
        );

        let reg = MachineConfig::nobal_reg();
        assert_eq!(reg.validate(), Ok(()));
        assert_eq!(
            reg.mem_buses,
            BusConfig {
                count: 2,
                latency: 4
            }
        );
        assert_eq!(
            reg.reg_buses,
            BusConfig {
                count: 4,
                latency: 2
            }
        );
        // NOBAL+REG remote accesses are slower.
        assert!(reg.latency_of(LatencyClass::RemoteHit) > mem.latency_of(LatencyClass::RemoteHit));
    }

    #[test]
    fn two_byte_interleave_is_valid() {
        let m = MachineConfig::paper_baseline().with_interleave(2);
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn builders_compose() {
        let m = MachineConfig::paper_baseline()
            .with_interleave(2)
            .with_attraction_buffers(AttractionBufferConfig::paper())
            .with_reg_buses(BusConfig {
                count: 32,
                latency: 2,
            });
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(m.interleave_bytes, 2);
        assert_eq!(
            m.attraction_buffers,
            Some(AttractionBufferConfig {
                entries: 16,
                assoc: 2
            })
        );
        assert_eq!(m.reg_buses.count, 32);
    }

    #[test]
    fn validation_rejects_uneven_interleave() {
        // 4 clusters × 16-byte interleave = 64 > 32-byte blocks.
        let m = MachineConfig::paper_baseline().with_interleave(16);
        assert_eq!(m.validate(), Err(ConfigError::UnevenInterleave));
    }

    #[test]
    fn validation_rejects_zero_resources() {
        let mut m = MachineConfig::paper_baseline();
        m.n_clusters = 0;
        assert!(matches!(m.validate(), Err(ConfigError::ZeroResource(_))));

        let mut m = MachineConfig::paper_baseline();
        m.mem_buses.count = 0;
        assert!(matches!(m.validate(), Err(ConfigError::ZeroResource(_))));

        let mut m = MachineConfig::paper_baseline();
        m.interleave_bytes = 0;
        assert!(matches!(m.validate(), Err(ConfigError::ZeroResource(_))));
    }

    #[test]
    fn validation_rejects_uneven_capacity() {
        let mut m = MachineConfig::paper_baseline();
        m.cache.total_bytes = 8 * 1024 + 4;
        assert_eq!(m.validate(), Err(ConfigError::UnevenCapacity));
    }

    #[test]
    fn default_is_paper_baseline() {
        assert_eq!(MachineConfig::default(), MachineConfig::paper_baseline());
    }

    #[test]
    fn canonical_bytes_are_stable_and_injective() {
        let base = MachineConfig::paper_baseline();
        assert_eq!(base.canonical_bytes(), base.canonical_bytes());

        // Every single-field perturbation must change the encoding.
        let mut variants: Vec<MachineConfig> = Vec::new();
        let mut m = base.clone();
        m.n_clusters = 8;
        variants.push(m);
        let mut m = base.clone();
        m.fu.integer = 2;
        variants.push(m);
        let mut m = base.clone();
        m.fu.fp = 2;
        variants.push(m);
        let mut m = base.clone();
        m.fu.memory = 2;
        variants.push(m);
        let mut m = base.clone();
        m.cache.total_bytes = 16 * 1024;
        variants.push(m);
        let mut m = base.clone();
        m.cache.block_bytes = 64;
        variants.push(m);
        let mut m = base.clone();
        m.cache.assoc = 4;
        variants.push(m);
        let mut m = base.clone();
        m.cache.latency = 2;
        variants.push(m);
        variants.push(base.clone().with_reg_buses(BusConfig {
            count: 2,
            latency: 2,
        }));
        variants.push(base.clone().with_mem_buses(BusConfig {
            count: 4,
            latency: 4,
        }));
        let mut m = base.clone();
        m.next_level.ports = 2;
        variants.push(m);
        let mut m = base.clone();
        m.next_level.latency = 20;
        variants.push(m);
        variants.push(base.clone().with_interleave(2));
        variants.push(base.clone().with_regs_per_cluster(128));
        variants.push(
            base.clone()
                .with_attraction_buffers(AttractionBufferConfig::paper()),
        );
        variants.push(
            base.clone()
                .with_attraction_buffers(AttractionBufferConfig {
                    entries: 32,
                    assoc: 2,
                }),
        );

        let base_bytes = base.canonical_bytes();
        let mut seen = vec![base_bytes.clone()];
        for v in &variants {
            let bytes = v.canonical_bytes();
            assert_ne!(bytes, base_bytes, "{v:?} aliases the baseline");
            assert!(!seen.contains(&bytes), "{v:?} aliases another variant");
            seen.push(bytes);
        }
    }

    #[test]
    fn sched_projection_ignores_sim_only_fields() {
        let base = MachineConfig::paper_baseline();
        let proj = base.sched_canonical_bytes();
        assert_eq!(proj, base.sched_canonical_bytes(), "stable");

        // Simulation-only perturbations keep the projection: the
        // scheduler never reads these, so their schedules are shared.
        let mut sim_only: Vec<MachineConfig> = Vec::new();
        let mut m = base.clone();
        m.mem_buses.count = 2;
        sim_only.push(m);
        let mut m = base.clone();
        m.cache.total_bytes = 16 * 1024;
        sim_only.push(m);
        let mut m = base.clone();
        m.cache.block_bytes = 64;
        sim_only.push(m);
        let mut m = base.clone();
        m.cache.assoc = 4;
        sim_only.push(m);
        let mut m = base.clone();
        m.next_level.ports = 2;
        sim_only.push(m);
        sim_only.push(
            base.clone()
                .with_attraction_buffers(AttractionBufferConfig::paper()),
        );
        for v in &sim_only {
            assert_eq!(v.sched_canonical_bytes(), proj, "{v:?} must share");
            assert_ne!(v.canonical_bytes(), base.canonical_bytes());
        }

        // Scheduler-visible perturbations must each change it.
        let mut sched_visible: Vec<MachineConfig> = Vec::new();
        let mut m = base.clone();
        m.n_clusters = 8;
        sched_visible.push(m);
        let mut m = base.clone();
        m.fu.memory = 2;
        sched_visible.push(m);
        let mut m = base.clone();
        m.reg_buses.count = 2;
        sched_visible.push(m);
        let mut m = base.clone();
        m.reg_buses.latency = 4;
        sched_visible.push(m);
        let mut m = base.clone();
        m.mem_buses.latency = 4;
        sched_visible.push(m);
        let mut m = base.clone();
        m.cache.latency = 2;
        sched_visible.push(m);
        let mut m = base.clone();
        m.next_level.latency = 20;
        sched_visible.push(m);
        sched_visible.push(base.clone().with_interleave(2));
        sched_visible.push(base.clone().with_regs_per_cluster(128));
        let mut seen = vec![proj.clone()];
        for v in &sched_visible {
            let bytes = v.sched_canonical_bytes();
            assert_ne!(bytes, proj, "{v:?} must differ");
            assert!(!seen.contains(&bytes), "{v:?} aliases another variant");
            seen.push(bytes);
        }
    }
}
