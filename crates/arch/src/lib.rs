//! Machine description for word-interleaved cache clustered VLIW
//! processors (paper Section 2.1, Table 2).
//!
//! The model is a fully-distributed clustered VLIW: each cluster owns a
//! register file, one integer / one FP / one memory functional unit, and a
//! *cache module* holding an interleaved slice of every cache block.
//! Clusters exchange register values over register-to-register buses and
//! memory requests over memory buses, both running at half the core
//! frequency (2-cycle transfers in the default configuration).
//!
//! # Example
//!
//! ```
//! use distvliw_arch::{LatencyClass, MachineConfig};
//!
//! let m = MachineConfig::paper_baseline();
//! assert_eq!(m.n_clusters, 4);
//! // Word interleaving: consecutive 4-byte words round-robin the clusters.
//! assert_eq!(m.home_cluster(0x1000), 0);
//! assert_eq!(m.home_cluster(0x1004), 1);
//! assert_eq!(m.latency_of(LatencyClass::LocalHit), 1);
//! assert_eq!(m.latency_of(LatencyClass::RemoteMiss), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod latency;
mod mapping;

pub use config::{
    AttractionBufferConfig, BusConfig, CacheConfig, ConfigError, FuMix, MachineConfig,
    NextLevelConfig, CANONICAL_BYTES_VERSION, SCHED_CANONICAL_BYTES_VERSION,
};
pub use latency::{AccessClass, LatencyClass};
pub use mapping::SubblockId;
