//! Property tests for the machine model: the address mapping must be a
//! consistent partition for any valid configuration.

use distvliw_arch::{LatencyClass, MachineConfig};
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    (1usize..3, 0usize..2)
        .prop_map(|(clusters_pow, interleave_pow)| {
            // 2 or 4 clusters; 2- or 4-byte interleave; block scaled to match.
            let n = 1 << clusters_pow;
            let interleave = 2u64 << interleave_pow;
            MachineConfig {
                n_clusters: n,
                interleave_bytes: interleave,
                ..MachineConfig::paper_baseline()
            }
        })
        .prop_filter("valid geometry", |m| m.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn home_cluster_is_stable_within_an_interleave_unit(m in arb_machine(), addr in 0u64..1 << 24) {
        let unit_base = addr - addr % m.interleave_bytes;
        for off in 0..m.interleave_bytes {
            prop_assert_eq!(m.home_cluster(unit_base + off), m.home_cluster(unit_base));
        }
    }

    #[test]
    fn consecutive_units_round_robin(m in arb_machine(), addr in 0u64..1 << 24) {
        let unit_base = addr - addr % m.interleave_bytes;
        let next = unit_base + m.interleave_bytes;
        prop_assert_eq!(
            m.home_cluster(next),
            (m.home_cluster(unit_base) + 1) % m.n_clusters
        );
    }

    #[test]
    fn subblock_is_consistent_with_home_and_block(m in arb_machine(), addr in 0u64..1 << 24) {
        let sb = m.subblock_of(addr);
        prop_assert_eq!(sb.home, m.home_cluster(addr));
        prop_assert_eq!(sb.block, m.block_of(addr));
        prop_assert!(sb.home < m.n_clusters);
    }

    #[test]
    fn every_block_spans_every_cluster(m in arb_machine(), block in 0u64..1 << 16) {
        let base = block * m.cache.block_bytes;
        let homes: std::collections::BTreeSet<usize> = (0..m.cache.block_bytes)
            .step_by(m.interleave_bytes as usize)
            .map(|off| m.home_cluster(base + off))
            .collect();
        prop_assert_eq!(homes.len(), m.n_clusters);
    }

    #[test]
    fn latency_classes_are_ordered(m in arb_machine()) {
        let l = |c| m.latency_of(c);
        prop_assert!(l(LatencyClass::LocalHit) <= l(LatencyClass::RemoteHit));
        prop_assert!(l(LatencyClass::LocalHit) <= l(LatencyClass::LocalMiss));
        prop_assert!(l(LatencyClass::RemoteHit) <= l(LatencyClass::RemoteMiss));
        prop_assert!(l(LatencyClass::LocalMiss) <= l(LatencyClass::RemoteMiss));
    }

    #[test]
    fn module_capacity_is_exact(m in arb_machine()) {
        let derived = m.module_sets() as u64 * m.subblock_bytes() * m.cache.assoc as u64;
        prop_assert_eq!(derived, m.module_bytes());
    }
}
