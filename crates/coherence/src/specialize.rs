//! Code specialization (paper Section 6).
//!
//! The compiler stays conservative: whenever it cannot prove two memory
//! instructions independent it adds a may-alias dependence. Code
//! specialization provides two versions of a loop — a *restrictive* one
//! honoring all dependences and an *aggressive* one ignoring the
//! unresolved ones — plus an entry check that picks the valid version at
//! run time. When the ambiguous accesses never actually overlap, the
//! aggressive version runs, and the chains the MDC solution must colocate
//! shrink dramatically (paper Table 5).
//!
//! Our ground truth for "actually aliases" is the kernel's *execution*
//! address streams: a dependence edge is removable exactly when the byte
//! ranges its endpoints touch are disjoint over the whole loop.

use distvliw_ir::{AddressStream, LoopKernel, Width};

/// Iterations sampled per stream when deciding runtime aliasing; streams
/// repeat far sooner than this in practice.
pub const ALIAS_SAMPLE_CAP: u64 = 4096;

/// Outcome of [`specialize_kernel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecializationReport {
    /// Memory dependence edges examined.
    pub checked: usize,
    /// Edges removed because their endpoints never alias at run time
    /// (the aggressive loop version is selected).
    pub removed: usize,
}

impl SpecializationReport {
    /// Whether specialization changed the kernel at all.
    #[must_use]
    pub fn changed(&self) -> bool {
        self.removed > 0
    }
}

/// Byte intervals touched by `stream` over `iters` iterations, as sorted,
/// coalesced `[start, end)` ranges.
fn touched_ranges(stream: &AddressStream, width: Width, iters: u64) -> Vec<(u64, u64)> {
    let n = iters.min(ALIAS_SAMPLE_CAP);
    let mut ranges: Vec<(u64, u64)> = (0..n)
        .map(|i| {
            let a = stream.addr_at(i);
            (a, a + width.bytes())
        })
        .collect();
    ranges.sort_unstable();
    ranges.dedup();
    // Coalesce overlapping/adjacent ranges.
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (s, e) in ranges {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Whether two sorted range lists intersect.
fn ranges_overlap(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (s1, e1) = a[i];
        let (s2, e2) = b[j];
        if s1 < e2 && s2 < e1 {
            return true;
        }
        if e1 <= s2 {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// Applies code specialization to `kernel`: removes every memory
/// dependence edge whose two access sites touch disjoint byte ranges under
/// the execution input. Returns the specialized kernel (the aggressive
/// loop version) and a report.
///
/// Must run **before** the MDC/DDGT passes (it panics on graphs with
/// replicated instances, which no longer correspond to single dependence
/// sites).
///
/// # Panics
///
/// Panics if the kernel contains replicated store instances.
#[must_use]
pub fn specialize_kernel(kernel: &LoopKernel) -> (LoopKernel, SpecializationReport) {
    assert!(
        kernel
            .ddg
            .node_ids()
            .all(|n| kernel.ddg.replica_of(n).is_none()),
        "specialization must run before store replication"
    );
    let mut out = kernel.clone();
    let mut report = SpecializationReport::default();

    let edges: Vec<(distvliw_ir::EdgeId, distvliw_ir::Dep)> = out.ddg.mem_dep_edges().collect();
    for (e, d) in edges {
        report.checked += 1;
        let src_ref = out
            .ddg
            .node(d.src)
            .mem
            .expect("memory edge endpoints access memory");
        let dst_ref = out
            .ddg
            .node(d.dst)
            .mem
            .expect("memory edge endpoints access memory");
        let (Some(src_stream), Some(dst_stream)) =
            (out.exec.get(src_ref.mem), out.exec.get(dst_ref.mem))
        else {
            continue; // unbound streams stay conservative
        };
        let a = touched_ranges(src_stream, src_ref.width, kernel.trip_count);
        let b = touched_ranges(dst_stream, dst_ref.width, kernel.trip_count);
        if !ranges_overlap(&a, &b) {
            out.ddg.remove_dep(e);
            report.removed += 1;
        }
    }
    if report.changed() {
        out.name = format!("{}#spec", kernel.name);
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdc::find_chains;
    use distvliw_ir::{DdgBuilder, DepKind, MemImage, Width};

    fn kernel_with_regions(src_base: u64, dst_base: u64) -> LoopKernel {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]);
        b.dep(l, s, DepKind::MemAnti, 0);
        let g = b.finish();
        let (ml, ms) = (g.node(l).mem_id().unwrap(), g.node(s).mem_id().unwrap());
        let mut k = LoopKernel::new("spec", g, 64);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(
                ml,
                AddressStream::Affine {
                    base: src_base,
                    stride: 4,
                },
            );
            img.insert(
                ms,
                AddressStream::Affine {
                    base: dst_base,
                    stride: 4,
                },
            );
        }
        k
    }

    #[test]
    fn disjoint_regions_drop_the_edge() {
        let k = kernel_with_regions(0, 1 << 20);
        let (out, report) = specialize_kernel(&k);
        assert_eq!(report.checked, 1);
        assert_eq!(report.removed, 1);
        assert!(report.changed());
        assert_eq!(out.ddg.mem_dep_edges().count(), 0);
        assert!(out.name.ends_with("#spec"));
        // The chain disappears.
        assert_eq!(find_chains(&out.ddg).biggest_len(), 0);
    }

    #[test]
    fn overlapping_regions_keep_the_edge() {
        let k = kernel_with_regions(0, 128); // both walk overlapping ranges
        let (out, report) = specialize_kernel(&k);
        assert_eq!(report.checked, 1);
        assert_eq!(report.removed, 0);
        assert!(!report.changed());
        assert_eq!(out.ddg.mem_dep_edges().count(), 1);
        assert_eq!(out.name, k.name);
    }

    #[test]
    fn partial_word_overlap_counts_as_alias() {
        // Store writes 4-byte words at 2-byte offsets from the loads.
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]);
        b.dep(l, s, DepKind::MemAnti, 0);
        let g = b.finish();
        let (ml, ms) = (g.node(l).mem_id().unwrap(), g.node(s).mem_id().unwrap());
        let mut k = LoopKernel::new("partial", g, 4);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(
                ml,
                AddressStream::Affine {
                    base: 0,
                    stride: 16,
                },
            );
            img.insert(
                ms,
                AddressStream::Affine {
                    base: 2,
                    stride: 16,
                },
            );
        }
        let (_, report) = specialize_kernel(&k);
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn unbound_streams_stay_conservative() {
        let mut k = kernel_with_regions(0, 1 << 20);
        k.exec = MemImage::new();
        let (out, report) = specialize_kernel(&k);
        assert_eq!(report.removed, 0);
        assert_eq!(out.ddg.mem_dep_edges().count(), 1);
    }

    #[test]
    fn touched_ranges_coalesce() {
        let s = AddressStream::Affine { base: 0, stride: 4 };
        let r = touched_ranges(&s, Width::W4, 8);
        assert_eq!(r, vec![(0, 32)]);
        let s = AddressStream::Affine { base: 0, stride: 8 };
        let r = touched_ranges(&s, Width::W4, 3);
        assert_eq!(r, vec![(0, 4), (8, 12), (16, 20)]);
    }

    #[test]
    fn ranges_overlap_cases() {
        assert!(ranges_overlap(&[(0, 4)], &[(3, 5)]));
        assert!(!ranges_overlap(&[(0, 4)], &[(4, 8)]));
        assert!(ranges_overlap(&[(0, 2), (10, 14)], &[(4, 11)]));
        assert!(!ranges_overlap(&[], &[(0, 1)]));
    }
}
