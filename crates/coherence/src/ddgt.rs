//! Data Dependence Graph Transformations (the DDGT solution, paper
//! Section 3.3).
//!
//! Two transformations applied to the original DDG:
//!
//! 1. **Store replication** — every store with a memory dependence is
//!    replicated `N−1` times (N = clusters); the scheduler pins one
//!    instance per cluster. At run time only the instance in the access's
//!    home cluster commits; the rest are nullified. Updates therefore
//!    always happen locally and memory-flow / memory-output dependences
//!    need no cross-cluster ordering.
//! 2. **Load–store synchronization** — each memory-anti dependence
//!    `load L → store S` is replaced by a SYNC dependence from a consumer
//!    of `L` to `S`: in a stall-on-use processor, once the consumer has
//!    issued, `L` has completed, so `S` can safely overwrite the location.
//!    When the chosen consumer would close an impossible (zero-distance)
//!    cycle — the paper's `n1/n3/n4` case — a *fake consumer*
//!    (`add r0 = r0 + r27`) is created instead.

use std::collections::BTreeMap;

use distvliw_ir::{Ddg, DepKind, NodeId, OpKind, Operation};

/// One replicated store: the original node and its clones, one per
/// cluster. `instances[k]` must be scheduled in cluster `k`; by convention
/// the original occupies index 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaGroup {
    /// The original store.
    pub root: NodeId,
    /// All N instances (original first).
    pub instances: Vec<NodeId>,
}

/// Outcome summary of [`transform`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DdgtReport {
    /// Store-replication groups (one per memory-dependent store).
    pub replica_groups: Vec<ReplicaGroup>,
    /// Fake consumers created while handling MA dependences.
    pub fake_consumers: Vec<NodeId>,
    /// Number of SYNC edges added.
    pub sync_edges: usize,
    /// Number of MA edges removed (all of them).
    pub removed_ma: usize,
    /// MA edges found redundant because a register-flow edge with the
    /// same distance already orders the pair.
    pub redundant_ma: usize,
}

impl DdgtReport {
    /// The replica group containing `n` (as root or instance), if any.
    #[must_use]
    pub fn group_of(&self, n: NodeId) -> Option<&ReplicaGroup> {
        self.replica_groups
            .iter()
            .find(|g| g.root == n || g.instances.contains(&n))
    }
}

/// Applies the paper's `transform_DDG()` to `ddg` for an `n_clusters`
/// machine. After the call the graph contains **no memory-anti edges**,
/// every memory-dependent store has exactly `n_clusters` instances, and
/// the graph is still free of zero-distance cycles.
///
/// # Panics
///
/// Panics if `n_clusters` is zero, or if the input graph already contains
/// replicas or SYNC edges (the transformation must run once, on an
/// untransformed graph).
#[must_use]
pub fn transform(ddg: &mut Ddg, n_clusters: usize) -> DdgtReport {
    assert!(n_clusters > 0, "n_clusters must be positive");
    assert!(
        ddg.node_ids().all(|n| ddg.replica_of(n).is_none()),
        "transform must run on an untransformed graph"
    );
    assert!(
        ddg.deps().all(|(_, d)| d.kind != DepKind::Sync),
        "transform must run on a graph without SYNC edges"
    );

    let mut report = DdgtReport::default();
    replicate_stores(ddg, n_clusters, &mut report);
    synchronize_loads_and_stores(ddg, &mut report);

    debug_assert!(
        ddg.deps().all(|(_, d)| d.kind != DepKind::MemAnti),
        "MA edges must all be eliminated"
    );
    debug_assert!(
        !ddg.has_zero_distance_cycle(),
        "transformation created a cycle"
    );
    report
}

/// Store replication: handles MF and MO dependences.
fn replicate_stores(ddg: &mut Ddg, n_clusters: usize, report: &mut DdgtReport) {
    // Snapshot the dependent stores and their edges before mutating.
    let targets: Vec<NodeId> = ddg
        .stores()
        .filter(|&s| ddg.is_memory_dependent(s))
        .collect();
    let is_target = |n: NodeId| targets.contains(&n);

    // Create the clones first so that inter-group edges can be wired
    // between same-index instances afterwards.
    let mut groups: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &s in &targets {
        let mut instances = vec![s];
        for _ in 1..n_clusters {
            instances.push(ddg.clone_node(s));
        }
        groups.insert(s, instances);
    }

    // Replicate edges. For each original edge incident to a replicated
    // store (snapshot of pre-clone edges):
    //  * self MO/MA/MF edges (store vs itself across iterations) are
    //    *redundant* after replication — if two executions alias they run
    //    in the same home cluster through the same instance, which the
    //    modulo schedule already serializes (paper: "not to replicate some
    //    redundant dependences (MO dependences between a store and
    //    itself)"). They are dropped from the originals too.
    //  * edges between two replicated stores connect same-index instances
    //    (paper: "replicate some newly created dependences (dependences
    //    between a new instance of n3 and a new instance of n4)").
    //  * edges to non-replicated nodes are cloned once per new instance.
    let snapshot: Vec<(distvliw_ir::EdgeId, distvliw_ir::Dep)> = ddg.deps().collect();
    for (e, d) in snapshot {
        let src_group = is_target(d.src);
        let dst_group = is_target(d.dst);
        if !src_group && !dst_group {
            continue;
        }
        if d.src == d.dst {
            if d.kind.is_memory() {
                // Redundant self dependence: same instance serializes.
                ddg.remove_dep(e);
            } else {
                // A register recurrence on the store itself: replicate to
                // each instance.
                let insts = groups[&d.src].clone();
                for &i in insts.iter().skip(1) {
                    ddg.add_dep(i, i, d.kind, d.distance);
                }
            }
            continue;
        }
        match (src_group, dst_group) {
            (true, true) => {
                let src_insts = groups[&d.src].clone();
                let dst_insts = groups[&d.dst].clone();
                for k in 1..n_clusters {
                    ddg.add_dep(src_insts[k], dst_insts[k], d.kind, d.distance);
                }
            }
            (true, false) => {
                let src_insts = groups[&d.src].clone();
                for &i in src_insts.iter().skip(1) {
                    ddg.add_dep(i, d.dst, d.kind, d.distance);
                }
            }
            (false, true) => {
                let dst_insts = groups[&d.dst].clone();
                for &i in dst_insts.iter().skip(1) {
                    ddg.add_dep(d.src, i, d.kind, d.distance);
                }
            }
            (false, false) => unreachable!(),
        }
    }

    report.replica_groups = groups
        .into_iter()
        .map(|(root, instances)| ReplicaGroup { root, instances })
        .collect();
}

/// Load–store synchronization: handles MA dependences.
fn synchronize_loads_and_stores(ddg: &mut Ddg, report: &mut DdgtReport) {
    // Cache of fake consumers per load, so several MA edges from the same
    // load reuse one fake consumer (their number must stay negligible,
    // paper Section 4.2 footnote).
    let mut fake_for: BTreeMap<NodeId, NodeId> = BTreeMap::new();

    let ma_edges: Vec<(distvliw_ir::EdgeId, distvliw_ir::Dep)> = ddg
        .deps()
        .filter(|(_, d)| d.kind == DepKind::MemAnti)
        .collect();
    for (e, d) in ma_edges {
        let load = d.src;
        let store = d.dst;
        debug_assert!(ddg.node(load).is_load(), "MA source must be a load");
        debug_assert!(ddg.node(store).is_store(), "MA target must be a store");

        // "if (not exists a register-flow dependence between L and S with
        // distance dist)": the RF edge already orders the pair.
        if ddg.has_rf_edge(load, store, d.distance) {
            report.redundant_ma += 1;
            ddg.remove_dep(e);
            report.removed_ma += 1;
            continue;
        }

        // "cons = select one consumer of L (if possible, not a store)".
        let consumers: Vec<NodeId> = ddg.consumers(load).collect();
        let natural = consumers
            .iter()
            .copied()
            .find(|&c| !ddg.node(c).is_store())
            .or(consumers.first().copied());

        let cons = match natural {
            Some(c) if !closes_impossible_cycle(ddg, c, store, d.distance) => c,
            _ => *fake_for
                .entry(load)
                .or_insert_with(|| make_fake_consumer(ddg, load, report)),
        };

        ddg.add_dep(cons, store, DepKind::Sync, d.distance);
        report.sync_edges += 1;
        ddg.remove_dep(e);
        report.removed_ma += 1;
    }
}

/// The paper's guard: the consumer is a memory instruction, sequentially
/// posterior to the store, and (same-iteration) dependent on it — so a
/// SYNC edge `cons → store` would demand `store` both before and after
/// `cons`. Generalized slightly: any zero-distance SYNC edge that closes a
/// zero-distance cycle is rejected.
fn closes_impossible_cycle(ddg: &Ddg, cons: NodeId, store: NodeId, dist: u32) -> bool {
    let papers_condition = ddg.node(cons).is_memory()
        && ddg.seq(cons) > ddg.seq(store)
        && ddg.depends_on_zero_dist(cons, store);
    if papers_condition {
        return true;
    }
    dist == 0 && ddg.depends_on_zero_dist(cons, store)
}

/// Creates the paper's fake consumer: `add r0 = r0 + rX` where `rX` is the
/// load's target register — an [`OpKind::FakeConsumer`] integer op.
fn make_fake_consumer(ddg: &mut Ddg, load: NodeId, report: &mut DdgtReport) -> NodeId {
    let loaded = ddg.node(load).dest.expect("loads produce a value");
    let zero = ddg.fresh_vreg(); // stands in for the always-zero r0
    let fake = ddg.add_operation(Operation::arith(
        OpKind::FakeConsumer,
        Some(zero),
        vec![zero, loaded],
    ));
    ddg.add_dep(load, fake, DepKind::RegFlow, 0);
    report.fake_consumers.push(fake);
    fake
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{DdgBuilder, Width};

    /// The paper's Figure 3 DDG (sequential order n1, n2, n3, n4, n5).
    fn figure3() -> (Ddg, [NodeId; 5]) {
        let mut b = DdgBuilder::new();
        let n1 = b.load(Width::W4);
        let n2 = b.load(Width::W4);
        let n3 = b.store(Width::W4, &[]);
        let n4 = b.store(Width::W4, &[n1]); // RF n1 -> n4
        let n5 = b.op(OpKind::IntAlu, &[n2]); // RF n2 -> n5
        b.dep(n1, n3, DepKind::MemAnti, 0);
        b.dep(n1, n4, DepKind::MemAnti, 0);
        b.dep(n2, n3, DepKind::MemAnti, 0);
        b.dep(n2, n4, DepKind::MemAnti, 0);
        b.dep(n3, n4, DepKind::MemOut, 0);
        b.dep(n4, n3, DepKind::MemOut, 1);
        b.dep(n3, n1, DepKind::MemFlow, 1);
        b.dep(n3, n2, DepKind::MemFlow, 1);
        b.dep(n4, n1, DepKind::MemFlow, 1);
        b.dep(n4, n2, DepKind::MemFlow, 1);
        (b.finish(), [n1, n2, n3, n4, n5])
    }

    #[test]
    fn figure3_transform_matches_figure5() {
        let (mut g, [n1, n2, n3, n4, n5]) = figure3();
        let report = transform(&mut g, 4);

        // Both stores replicated: "4 copies" in Figure 5.
        assert_eq!(report.replica_groups.len(), 2);
        for group in &report.replica_groups {
            assert_eq!(group.instances.len(), 4);
            assert!(group.root == n3 || group.root == n4);
        }

        // One fake consumer for the n1→n3 MA (its natural consumer n4 is
        // a posterior, dependent store).
        assert_eq!(report.fake_consumers.len(), 1);
        let fake = report.fake_consumers[0];
        assert_eq!(g.node(fake).kind, OpKind::FakeConsumer);
        assert!(g.has_rf_edge(n1, fake, 0));

        // The n1→n4 MA was redundant (RF n1→n4 exists, distance 0). The
        // MA and RF edges were both replicated to the four instances of
        // n4, so the redundancy fires once per instance.
        assert_eq!(report.redundant_ma, 4);

        // No MA edges left; SYNC edges exist; graph is still schedulable.
        assert_eq!(
            g.deps().filter(|(_, d)| d.kind == DepKind::MemAnti).count(),
            0
        );
        assert!(report.sync_edges >= 2);
        assert!(!g.has_zero_distance_cycle());

        // n2's MA deps became SYNCs from its consumer n5 to store
        // instances of n3 and n4.
        let n5_syncs: Vec<NodeId> = g
            .out_deps(n5)
            .filter(|(_, d)| d.kind == DepKind::Sync)
            .map(|(_, d)| d.dst)
            .collect();
        assert!(n5_syncs.iter().any(|&t| g.replica_root(t) == n3));
        assert!(n5_syncs.iter().any(|&t| g.replica_root(t) == n4));
        let _ = (n1, n2);
    }

    #[test]
    fn replication_clones_memory_site_and_seq() {
        let (mut g, [_, _, n3, _, _]) = figure3();
        let report = transform(&mut g, 4);
        let group = report.group_of(n3).unwrap();
        for &i in &group.instances {
            assert_eq!(g.node(i).mem_id(), g.node(n3).mem_id());
            assert_eq!(g.seq(i), g.seq(n3));
        }
    }

    #[test]
    fn inter_group_mo_connects_same_index_instances() {
        let (mut g, [_, _, n3, n4, _]) = figure3();
        let report = transform(&mut g, 4);
        let g3 = report.group_of(n3).unwrap().instances.clone();
        let g4 = report.group_of(n4).unwrap().instances.clone();
        for k in 0..4 {
            // MO n3[k] -> n4[k] at distance 0 must exist.
            assert!(
                g.out_deps(g3[k])
                    .any(|(_, d)| d.dst == g4[k] && d.kind == DepKind::MemOut && d.distance == 0),
                "missing MO between instance pair {k}"
            );
            // And no cross-index MO.
            for (j, &other) in g4.iter().enumerate() {
                if j != k {
                    assert!(!g
                        .out_deps(g3[k])
                        .any(|(_, d)| d.dst == other && d.kind == DepKind::MemOut));
                }
            }
        }
    }

    #[test]
    fn independent_stores_are_not_replicated() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let _s = b.store(Width::W4, &[l]); // only RF, no memory dependence
        let mut g = b.finish();
        let report = transform(&mut g, 4);
        assert!(report.replica_groups.is_empty());
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn self_output_dependence_is_dropped() {
        let mut b = DdgBuilder::new();
        let s = b.store(Width::W4, &[]);
        let l = b.load(Width::W4);
        b.dep(s, s, DepKind::MemOut, 1); // store aliases itself across iterations
        b.dep(s, l, DepKind::MemFlow, 1);
        let mut g = b.finish();
        let report = transform(&mut g, 4);
        assert_eq!(report.replica_groups.len(), 1);
        // No instance keeps a self MO edge.
        for &i in &report.replica_groups[0].instances {
            assert_eq!(g.out_deps(i).filter(|(_, d)| d.dst == i).count(), 0);
        }
    }

    #[test]
    fn ma_with_rf_same_distance_is_simply_removed() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]); // RF l→s, d=0
        b.dep(l, s, DepKind::MemAnti, 0);
        let mut g = b.finish();
        let report = transform(&mut g, 2);
        // One MA per store instance, each redundant through its own
        // replicated RF edge.
        assert_eq!(report.redundant_ma, 2);
        assert_eq!(report.sync_edges, 0);
        assert!(report.fake_consumers.is_empty());
    }

    #[test]
    fn ma_with_rf_different_distance_still_synchronizes() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]); // RF l→s at d=0
        b.dep(l, s, DepKind::MemAnti, 1); // but the MA is loop-carried
        let mut g = b.finish();
        let report = transform(&mut g, 2);
        assert_eq!(report.redundant_ma, 0);
        // One SYNC per store instance.
        assert_eq!(report.sync_edges, 2);
        // The SYNC edge keeps the MA's distance.
        assert!(g
            .deps()
            .any(|(_, d)| d.kind == DepKind::Sync && d.distance == 1));
    }

    #[test]
    fn load_without_consumer_gets_fake_consumer() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4); // dead load
        let s = b.store(Width::W4, &[]);
        b.dep(l, s, DepKind::MemAnti, 0);
        let mut g = b.finish();
        let report = transform(&mut g, 2);
        assert_eq!(report.fake_consumers.len(), 1);
        // One SYNC per store instance, both through the shared fake consumer.
        assert_eq!(report.sync_edges, 2);
    }

    #[test]
    fn fake_consumer_is_shared_across_ma_edges_of_one_load() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s1 = b.store(Width::W4, &[]);
        let s2 = b.store(Width::W4, &[]);
        b.dep(l, s1, DepKind::MemAnti, 0);
        b.dep(l, s2, DepKind::MemAnti, 0);
        b.dep(s1, s2, DepKind::MemOut, 0);
        let mut g = b.finish();
        let report = transform(&mut g, 4);
        assert_eq!(report.fake_consumers.len(), 1);
        // Two stores × four instances each.
        assert_eq!(report.sync_edges, 8);
    }

    #[test]
    fn transform_result_has_no_zero_distance_cycle() {
        let (mut g, _) = figure3();
        let _ = transform(&mut g, 4);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "untransformed")]
    fn transform_rejects_double_application() {
        let (mut g, _) = figure3();
        let _ = transform(&mut g, 4);
        let _ = transform(&mut g, 4);
    }

    #[test]
    fn two_cluster_replication_count() {
        let (mut g, _) = figure3();
        let before = g.node_count();
        let report = transform(&mut g, 2);
        // Each of the 2 dependent stores gains 1 clone; plus 1 fake consumer.
        assert_eq!(g.node_count(), before + 2 + report.fake_consumers.len());
    }
}
