//! Memory Dependent Chains (the MDC solution, paper Section 3.2).
//!
//! A *memory dependent chain* is a maximal set of memory instructions
//! connected (in either direction, transitively) by memory dependence
//! edges. Scheduling a whole chain in one cluster guarantees serialization
//! of any aliasing pair: same-cluster memory operations issue in program
//! order and reach their home cluster in program order too.

use std::collections::BTreeMap;

use distvliw_ir::{Ddg, LoopKernel, NodeId, PrefInfo, PrefMap};

/// Disjoint-set forest over node indices.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }
}

/// The memory dependent chains of one DDG.
///
/// Every memory instruction belongs to exactly one chain; instructions
/// with no memory dependences form singleton chains (which impose no
/// placement constraint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemDepChains {
    chains: Vec<Vec<NodeId>>,
    by_node: BTreeMap<NodeId, usize>,
}

impl MemDepChains {
    /// All chains, each sorted by node id. Includes singletons.
    #[must_use]
    pub fn chains(&self) -> &[Vec<NodeId>] {
        &self.chains
    }

    /// The chain index of a memory instruction, if it is one.
    #[must_use]
    pub fn chain_of(&self, n: NodeId) -> Option<usize> {
        self.by_node.get(&n).copied()
    }

    /// The members of chain `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn members(&self, idx: usize) -> &[NodeId] {
        &self.chains[idx]
    }

    /// Chains with at least two members — the ones that actually constrain
    /// the cluster assignment.
    pub fn nontrivial(&self) -> impl Iterator<Item = (usize, &[NodeId])> + '_ {
        self.chains
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len() >= 2)
            .map(|(i, c)| (i, c.as_slice()))
    }

    /// Size of the biggest nontrivial chain (0 when there is none), in
    /// static memory instructions.
    #[must_use]
    pub fn biggest_len(&self) -> usize {
        self.nontrivial().map(|(_, c)| c.len()).max().unwrap_or(0)
    }

    /// The paper's *average preferred cluster* of a chain: the cluster
    /// with the highest accumulated profile count over all members
    /// (Section 3.2: "the average preferred cluster of the whole chain").
    ///
    /// Members without profile data contribute nothing; if no member has
    /// data the result is cluster 0.
    #[must_use]
    pub fn average_preferred_cluster(
        &self,
        idx: usize,
        ddg: &Ddg,
        prefs: &PrefMap,
        n_clusters: usize,
    ) -> usize {
        let mut acc = PrefInfo::new(n_clusters);
        for &n in self.members(idx) {
            if let Some(mem) = ddg.node(n).mem_id() {
                if let Some(info) = prefs.get(&mem) {
                    acc.merge(info);
                }
            }
        }
        acc.preferred()
    }
}

/// Computes the memory dependent chains of `ddg` by union-find over its
/// memory dependence edges (MF, MA, MO — SYNC edges do not merge chains).
#[must_use]
pub fn find_chains(ddg: &Ddg) -> MemDepChains {
    let mut uf = UnionFind::new(ddg.node_count());
    for (_, d) in ddg.mem_dep_edges() {
        uf.union(d.src.0, d.dst.0);
    }
    let mut roots: BTreeMap<u32, usize> = BTreeMap::new();
    let mut chains: Vec<Vec<NodeId>> = Vec::new();
    let mut by_node = BTreeMap::new();
    for n in ddg.mem_nodes().collect::<Vec<_>>() {
        let root = uf.find(n.0);
        let idx = *roots.entry(root).or_insert_with(|| {
            chains.push(Vec::new());
            chains.len() - 1
        });
        chains[idx].push(n);
        by_node.insert(n, idx);
    }
    MemDepChains { chains, by_node }
}

/// The paper's Table 3 ratios for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainStats {
    /// *Biggest Chain over Memory instructions Ratio*: dynamic memory
    /// instructions in the biggest chain of each loop over all dynamic
    /// memory instructions.
    pub cmr: f64,
    /// *Biggest Chain over All instructions Ratio*: same numerator over
    /// all dynamic instructions.
    pub car: f64,
}

/// Computes CMR and CAR over a set of weighted loop kernels (paper
/// Section 4.2, Table 3).
#[must_use]
pub fn chain_stats<'a>(kernels: impl IntoIterator<Item = &'a LoopKernel>) -> ChainStats {
    let mut biggest_dyn = 0u128;
    let mut mem_dyn = 0u128;
    let mut all_dyn = 0u128;
    for k in kernels {
        let chains = find_chains(&k.ddg);
        let weight = u128::from(k.dyn_iterations());
        biggest_dyn += chains.biggest_len() as u128 * weight;
        mem_dyn += u128::from(k.dyn_mem_accesses());
        all_dyn += u128::from(k.dyn_ops());
    }
    let ratio = |num: u128, den: u128| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    ChainStats {
        cmr: ratio(biggest_dyn, mem_dyn),
        car: ratio(biggest_dyn, all_dyn),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distvliw_ir::{AddressStream, DdgBuilder, DepKind, OpKind, PrefInfo, Width};

    /// The paper's Figure 3 graph: {n1, n2, n3, n4} form one chain, n5 is
    /// not a memory op.
    fn figure3() -> (Ddg, [NodeId; 5]) {
        let mut b = DdgBuilder::new();
        let n1 = b.load(Width::W4);
        let n2 = b.load(Width::W4);
        let n3 = b.store(Width::W4, &[]);
        let n4 = b.store(Width::W4, &[n1]);
        let n5 = b.op(OpKind::IntAlu, &[n2]);
        b.dep(n1, n3, DepKind::MemAnti, 0);
        b.dep(n1, n4, DepKind::MemAnti, 0);
        b.dep(n2, n3, DepKind::MemAnti, 0);
        b.dep(n2, n4, DepKind::MemAnti, 0);
        b.dep(n3, n4, DepKind::MemOut, 0);
        b.dep(n4, n3, DepKind::MemOut, 1);
        b.dep(n3, n1, DepKind::MemFlow, 1);
        b.dep(n4, n2, DepKind::MemFlow, 1);
        (b.finish(), [n1, n2, n3, n4, n5])
    }

    #[test]
    fn figure3_is_one_chain() {
        let (g, [n1, n2, n3, n4, n5]) = figure3();
        let chains = find_chains(&g);
        assert_eq!(chains.nontrivial().count(), 1);
        assert_eq!(chains.biggest_len(), 4);
        let idx = chains.chain_of(n1).unwrap();
        for n in [n2, n3, n4] {
            assert_eq!(chains.chain_of(n), Some(idx));
        }
        assert_eq!(chains.chain_of(n5), None);
    }

    #[test]
    fn independent_mem_ops_form_singletons() {
        let mut b = DdgBuilder::new();
        let l1 = b.load(Width::W2);
        let l2 = b.load(Width::W2);
        let _ = b.op(OpKind::IntAlu, &[l1, l2]);
        let g = b.finish();
        let chains = find_chains(&g);
        assert_eq!(chains.nontrivial().count(), 0);
        assert_eq!(chains.biggest_len(), 0);
        assert_ne!(chains.chain_of(l1), chains.chain_of(l2));
    }

    #[test]
    fn two_disjoint_chains() {
        let mut b = DdgBuilder::new();
        let a1 = b.load(Width::W4);
        let a2 = b.store(Width::W4, &[a1]);
        b.dep(a1, a2, DepKind::MemAnti, 0);
        let c1 = b.load(Width::W4);
        let c2 = b.store(Width::W4, &[c1]);
        b.dep(c2, c1, DepKind::MemFlow, 1);
        let g = b.finish();
        let chains = find_chains(&g);
        assert_eq!(chains.nontrivial().count(), 2);
        assert_eq!(chains.biggest_len(), 2);
        assert_ne!(chains.chain_of(a1), chains.chain_of(c1));
        assert_eq!(chains.chain_of(a1), chains.chain_of(a2));
    }

    #[test]
    fn sync_edges_do_not_merge_chains() {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[]);
        b.dep(l, s, DepKind::Sync, 0);
        let g = b.finish();
        let chains = find_chains(&g);
        assert_eq!(chains.nontrivial().count(), 0);
    }

    #[test]
    fn figure3_average_preferred_cluster() {
        // Paper Section 3.2: with PrefClus all of {n1..n4} go to cluster 3
        // (index 2): merged pref = {90, 90, 150, 70}.
        let (g, [n1, n2, n3, n4, _]) = figure3();
        let chains = find_chains(&g);
        let idx = chains.chain_of(n1).unwrap();
        let mut prefs = PrefMap::new();
        prefs.insert(
            g.node(n1).mem_id().unwrap(),
            PrefInfo::from_counts(vec![70, 30, 0, 0]),
        );
        prefs.insert(
            g.node(n2).mem_id().unwrap(),
            PrefInfo::from_counts(vec![20, 50, 30, 0]),
        );
        prefs.insert(
            g.node(n3).mem_id().unwrap(),
            PrefInfo::from_counts(vec![0, 0, 100, 0]),
        );
        prefs.insert(
            g.node(n4).mem_id().unwrap(),
            PrefInfo::from_counts(vec![0, 10, 20, 70]),
        );
        assert_eq!(chains.average_preferred_cluster(idx, &g, &prefs, 4), 2);
    }

    #[test]
    fn average_preferred_cluster_without_profile_defaults_to_zero() {
        let (g, [n1, ..]) = figure3();
        let chains = find_chains(&g);
        let idx = chains.chain_of(n1).unwrap();
        assert_eq!(
            chains.average_preferred_cluster(idx, &g, &PrefMap::new(), 4),
            0
        );
    }

    fn weighted_kernel(trip: u64, chained: bool) -> LoopKernel {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]);
        let _ = b.op(OpKind::IntAlu, &[l]);
        if chained {
            b.dep(l, s, DepKind::MemAnti, 0);
        }
        let g = b.finish();
        let (ml, ms) = (g.node(l).mem_id().unwrap(), g.node(s).mem_id().unwrap());
        let mut k = LoopKernel::new("w", g, trip);
        for img in [&mut k.profile, &mut k.exec] {
            img.insert(ml, AddressStream::Affine { base: 0, stride: 4 });
            img.insert(
                ms,
                AddressStream::Affine {
                    base: 4096,
                    stride: 4,
                },
            );
        }
        k
    }

    #[test]
    fn chain_stats_weighting() {
        // Kernel A (trip 100): chain of 2 among 2 mem ops, 3 ops total.
        // Kernel B (trip 300): no chain.
        let a = weighted_kernel(100, true);
        let b = weighted_kernel(300, false);
        let stats = chain_stats([&a, &b]);
        // biggest = 2*100 = 200; mem = 2*100 + 2*300 = 800; all = 3*400 = 1200.
        assert!((stats.cmr - 200.0 / 800.0).abs() < 1e-12);
        assert!((stats.car - 200.0 / 1200.0).abs() < 1e-12);
        // CAR <= CMR by definition.
        assert!(stats.car <= stats.cmr);
    }

    #[test]
    fn chain_stats_empty_is_zero() {
        let stats = chain_stats(std::iter::empty());
        assert_eq!(stats.cmr, 0.0);
        assert_eq!(stats.car, 0.0);
    }

    #[test]
    fn union_find_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }
}
