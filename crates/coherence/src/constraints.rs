//! Cluster-assignment constraints handed to the modulo scheduler.
//!
//! Both solutions restrict where memory instructions may be scheduled:
//!
//! * **MDC** produces *colocation groups* (one per nontrivial chain). With
//!   the PrefClus heuristic the group's target cluster is precomputed as
//!   the chain's average preferred cluster; with MinComs the scheduler
//!   fixes the group's cluster when it schedules the first member.
//! * **DDGT** produces *pins*: instance `k` of a replicated store must be
//!   scheduled in cluster `k`, so exactly one instance is local to every
//!   possible home of the access.

use std::collections::BTreeMap;

use distvliw_ir::{Ddg, NodeId, PrefMap};

use crate::ddgt::DdgtReport;
use crate::mdc::MemDepChains;

/// Placement constraints for one DDG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedConstraints {
    /// Nodes sharing a value must be scheduled in the same cluster.
    pub colocate: BTreeMap<NodeId, u32>,
    /// Pre-decided cluster per colocation group (PrefClus only).
    pub group_target: BTreeMap<u32, usize>,
    /// Hard per-node cluster pins (DDGT replica instances).
    pub pinned: BTreeMap<NodeId, usize>,
    /// Minimum initiation interval mandated by the constraint producer
    /// (0 means unconstrained). The scheduler must not emit any schedule
    /// — including the trivial one for an empty graph — with a smaller
    /// II.
    pub min_ii: u32,
}

impl SchedConstraints {
    /// No constraints: the unsound "free scheduling" baseline of the
    /// paper's evaluation.
    #[must_use]
    pub fn none() -> Self {
        SchedConstraints::default()
    }

    /// Constraints for the MDC solution.
    ///
    /// Every nontrivial chain becomes a colocation group. When `prefs` is
    /// `Some`, each group is targeted at the chain's average preferred
    /// cluster (the PrefClus strategy); with `None` the target is left to
    /// the scheduler (the MinComs strategy).
    #[must_use]
    pub fn for_mdc(
        chains: &MemDepChains,
        ddg: &Ddg,
        prefs: Option<&PrefMap>,
        n_clusters: usize,
    ) -> Self {
        let mut c = SchedConstraints::default();
        for (group, (idx, members)) in (0u32..).zip(chains.nontrivial()) {
            for &n in members {
                c.colocate.insert(n, group);
            }
            if let Some(prefs) = prefs {
                let target = chains.average_preferred_cluster(idx, ddg, prefs, n_clusters);
                c.group_target.insert(group, target);
            }
        }
        c
    }

    /// Constraints for the DDGT solution: pin instance `k` of every
    /// replica group to cluster `k`.
    #[must_use]
    pub fn for_ddgt(report: &DdgtReport) -> Self {
        let mut c = SchedConstraints::default();
        for group in &report.replica_groups {
            for (k, &inst) in group.instances.iter().enumerate() {
                c.pinned.insert(inst, k);
            }
        }
        c
    }

    /// Whether node `n` is constrained in any way.
    #[must_use]
    pub fn is_constrained(&self, n: NodeId) -> bool {
        self.colocate.contains_key(&n) || self.pinned.contains_key(&n)
    }

    /// The colocation groups as group → members (members in `NodeId`
    /// order) — the pure inverse of the per-node `colocate` map, used by
    /// the static checker to re-verify the MDC postcondition without
    /// touching scheduler state.
    #[must_use]
    pub fn colocation_groups(&self) -> BTreeMap<u32, Vec<NodeId>> {
        let mut groups: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for (&n, &g) in &self.colocate {
            groups.entry(g).or_default().push(n);
        }
        groups
    }

    /// The pinned nodes as cluster → pinned nodes (nodes in `NodeId`
    /// order) — the pure inverse of the per-node `pinned` map. Under
    /// DDGT this is one replica instance per cluster.
    #[must_use]
    pub fn pin_groups(&self) -> BTreeMap<usize, Vec<NodeId>> {
        let mut groups: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for (&n, &cluster) in &self.pinned {
            groups.entry(cluster).or_default().push(n);
        }
        groups
    }

    /// Returns the constraints with a mandated minimum II.
    #[must_use]
    pub fn with_min_ii(mut self, min_ii: u32) -> Self {
        self.min_ii = min_ii;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddgt::transform;
    use crate::mdc::find_chains;
    use distvliw_ir::{DdgBuilder, DepKind, PrefInfo, Width};

    fn chained_graph() -> (Ddg, NodeId, NodeId) {
        let mut b = DdgBuilder::new();
        let l = b.load(Width::W4);
        let s = b.store(Width::W4, &[l]);
        b.dep(l, s, DepKind::MemAnti, 0);
        let g = b.finish();
        (g, l, s)
    }

    #[test]
    fn none_is_unconstrained() {
        let (g, l, s) = chained_graph();
        let c = SchedConstraints::none();
        assert!(!c.is_constrained(l));
        assert!(!c.is_constrained(s));
        let _ = g;
    }

    #[test]
    fn mdc_prefclus_targets_average_cluster() {
        let (g, l, s) = chained_graph();
        let chains = find_chains(&g);
        let mut prefs = PrefMap::new();
        prefs.insert(
            g.node(l).mem_id().unwrap(),
            PrefInfo::from_counts(vec![0, 80, 20, 0]),
        );
        prefs.insert(
            g.node(s).mem_id().unwrap(),
            PrefInfo::from_counts(vec![30, 30, 40, 0]),
        );
        let c = SchedConstraints::for_mdc(&chains, &g, Some(&prefs), 4);
        let gl = c.colocate[&l];
        assert_eq!(gl, c.colocate[&s]);
        // merged = {30, 110, 60, 0} → cluster 1.
        assert_eq!(c.group_target[&gl], 1);
        assert!(c.is_constrained(l));
    }

    #[test]
    fn mdc_mincoms_leaves_target_open() {
        let (g, l, s) = chained_graph();
        let chains = find_chains(&g);
        let c = SchedConstraints::for_mdc(&chains, &g, None, 4);
        assert_eq!(c.colocate[&l], c.colocate[&s]);
        assert!(c.group_target.is_empty());
    }

    #[test]
    fn singleton_chains_are_unconstrained() {
        let mut b = DdgBuilder::new();
        let l1 = b.load(Width::W4);
        let l2 = b.load(Width::W4);
        let g = b.finish();
        let chains = find_chains(&g);
        let c = SchedConstraints::for_mdc(&chains, &g, None, 4);
        assert!(!c.is_constrained(l1));
        assert!(!c.is_constrained(l2));
    }

    #[test]
    fn group_inverses_round_trip() {
        let (g, l, s) = chained_graph();
        let chains = find_chains(&g);
        let c = SchedConstraints::for_mdc(&chains, &g, None, 4);
        let groups = c.colocation_groups();
        assert_eq!(groups.len(), 1);
        let members = groups.values().next().unwrap();
        assert_eq!(members, &vec![l, s]);
        assert!(c.pin_groups().is_empty());

        let (mut g2, _, _) = chained_graph();
        let report = transform(&mut g2, 4);
        let c2 = SchedConstraints::for_ddgt(&report);
        let pins = c2.pin_groups();
        assert_eq!(pins.len(), 4, "one replica instance per cluster");
        assert!(pins.values().all(|nodes| nodes.len() == 1));
    }

    #[test]
    fn ddgt_pins_one_instance_per_cluster() {
        let (mut g, l, _s) = chained_graph();
        let report = transform(&mut g, 4);
        let c = SchedConstraints::for_ddgt(&report);
        assert_eq!(report.replica_groups.len(), 1);
        let group = &report.replica_groups[0];
        let mut clusters: Vec<usize> = group.instances.iter().map(|i| c.pinned[i]).collect();
        clusters.sort_unstable();
        assert_eq!(clusters, vec![0, 1, 2, 3]);
        // Loads stay free.
        assert!(!c.is_constrained(l));
    }
}
