//! The paper's contribution: local scheduling techniques that guarantee
//! memory coherence on a clustered VLIW processor with a distributed data
//! cache, **without any extra hardware**.
//!
//! Two alternative solutions are provided (paper Section 3):
//!
//! * [`mdc`] — *Memory Dependent Chains*: sets of transitively
//!   memory-dependent instructions are computed and constrained to a
//!   single cluster, where in-order issue serializes them.
//! * [`ddgt`] — *Data Dependence Graph Transformations*: *store
//!   replication* eliminates memory-flow/output dependences by executing
//!   every dependent store's update in its home cluster, and *load–store
//!   synchronization* replaces memory-anti dependences by SYNC edges from
//!   a consumer of the load (possibly a freshly created *fake consumer*).
//!
//! [`specialize`] implements the code-specialization extension of paper
//! Section 6: loop versioning that discards may-alias dependences which
//! never materialize at run time, shrinking the chains MDC must colocate.
//!
//! [`constraints`] packages the output of either solution in the form the
//! modulo scheduler consumes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod constraints;
pub mod ddgt;
pub mod mdc;
pub mod specialize;

pub use constraints::SchedConstraints;
pub use ddgt::{transform, DdgtReport};
pub use mdc::{chain_stats, find_chains, ChainStats, MemDepChains};
pub use specialize::{specialize_kernel, SpecializationReport};
