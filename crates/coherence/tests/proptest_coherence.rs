//! Property tests for the coherence passes on randomly generated graphs.

use distvliw_coherence::{find_chains, specialize_kernel, transform, SchedConstraints};
use distvliw_ir::{AddressStream, DdgBuilder, DepKind, LoopKernel, NodeId, Width};
use proptest::prelude::*;

/// A random kernel whose memory ops live on `n_arrays` arrays; ops on one
/// array share a stream (full aliasing), ops on different arrays never
/// alias. Conservative edges are declared between all pairs of the same
/// array plus (false) edges between some cross-array pairs.
fn arb_kernel() -> impl Strategy<Value = LoopKernel> {
    (
        2usize..10,
        1usize..4,
        proptest::collection::vec(any::<u8>(), 8),
    )
        .prop_map(|(n_mem, n_arrays, entropy)| {
            let mut b = DdgBuilder::new();
            let mut loads: Vec<NodeId> = Vec::new();
            let mut mems: Vec<NodeId> = Vec::new();
            for i in 0..n_mem {
                let node = if entropy[i % entropy.len()] % 3 == 0 && !loads.is_empty() {
                    let src = loads[i % loads.len()];
                    b.store(Width::W4, &[src])
                } else {
                    let l = b.load(Width::W4);
                    loads.push(l);
                    l
                };
                mems.push(node);
            }
            let g = b.graph();
            let mut edges = Vec::new();
            for (i, &a) in mems.iter().enumerate() {
                for (j, &c) in mems.iter().enumerate().skip(i + 1) {
                    let kind = match (g.node(a).is_store(), g.node(c).is_store()) {
                        (true, true) => DepKind::MemOut,
                        (true, false) => DepKind::MemFlow,
                        (false, true) => DepKind::MemAnti,
                        (false, false) => continue,
                    };
                    let same_array = i % n_arrays == j % n_arrays;
                    let false_link = entropy[(i * 3 + j) % entropy.len()] % 4 == 0;
                    if same_array || false_link {
                        edges.push((a, c, kind, 0u32));
                    }
                }
            }
            for (a, c, kind, d) in edges {
                b.dep(a, c, kind, d);
            }
            let ddg = b.finish();
            let sites: Vec<_> = ddg
                .mem_nodes()
                .map(|n| (n, ddg.node(n).mem_id().unwrap()))
                .collect();
            let mut k = LoopKernel::new("prop-coherence", ddg, 16);
            for (idx, &(_, m)) in sites.iter().enumerate() {
                let base = 4096 + (idx % n_arrays) as u64 * 0x1000;
                for img in [&mut k.profile, &mut k.exec] {
                    img.insert(m, AddressStream::Affine { base, stride: 4 });
                }
            }
            k
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn specialization_only_removes_false_edges(kernel in arb_kernel()) {
        let (out, report) = specialize_kernel(&kernel);
        prop_assert_eq!(
            report.checked,
            kernel.ddg.mem_dep_edges().count(),
            "every memory edge is examined"
        );
        // Remaining edges truly alias; removed edges never did. Since
        // same-array ops share identical streams and cross-array ops are
        // 4KB apart, "truly alias" == "same array".
        for (_, d) in out.ddg.mem_dep_edges() {
            let a = out.exec.addr(out.ddg.node(d.src).mem_id().unwrap(), 0);
            let b = out.exec.addr(out.ddg.node(d.dst).mem_id().unwrap(), 0);
            prop_assert_eq!(a & !0xFFF, b & !0xFFF, "kept edge must be same-array");
        }
        prop_assert!(out.ddg.mem_dep_edges().count() + report.removed == report.checked);
    }

    #[test]
    fn specialization_is_idempotent(kernel in arb_kernel()) {
        let (once, first) = specialize_kernel(&kernel);
        let (_twice, second) = specialize_kernel(&once);
        prop_assert_eq!(second.removed, 0, "second pass removes nothing");
        prop_assert_eq!(second.checked, first.checked - first.removed);
    }

    #[test]
    fn specialization_never_grows_chains(kernel in arb_kernel()) {
        let before = find_chains(&kernel.ddg).biggest_len();
        let (out, _) = specialize_kernel(&kernel);
        let after = find_chains(&out.ddg).biggest_len();
        prop_assert!(after <= before, "{after} > {before}");
    }

    #[test]
    fn ddgt_constraints_pin_every_instance_distinctly(kernel in arb_kernel()) {
        let mut g = kernel.ddg.clone();
        let report = transform(&mut g, 4);
        let c = SchedConstraints::for_ddgt(&report);
        for group in &report.replica_groups {
            let mut pins: Vec<usize> =
                group.instances.iter().map(|i| c.pinned[i]).collect();
            pins.sort_unstable();
            prop_assert_eq!(pins, vec![0, 1, 2, 3]);
        }
        // Non-store nodes are never pinned.
        for n in g.node_ids() {
            if !g.node(n).is_store() {
                prop_assert!(!c.pinned.contains_key(&n));
            }
        }
    }

    #[test]
    fn mdc_constraints_cover_exactly_the_nontrivial_chains(kernel in arb_kernel()) {
        let chains = find_chains(&kernel.ddg);
        let c = SchedConstraints::for_mdc(&chains, &kernel.ddg, None, 4);
        for (idx, members) in chains.chains().iter().enumerate() {
            for &n in members {
                prop_assert_eq!(
                    c.colocate.contains_key(&n),
                    members.len() >= 2,
                    "chain {} membership mismatch for {}",
                    idx,
                    n
                );
            }
        }
    }

    #[test]
    fn transform_grows_nodes_by_replicas_and_fakes(kernel in arb_kernel()) {
        let mut g = kernel.ddg.clone();
        let before = g.node_count();
        let report = transform(&mut g, 4);
        let expected =
            before + 3 * report.replica_groups.len() + report.fake_consumers.len();
        prop_assert_eq!(g.node_count(), expected);
    }
}
