//! # distvliw
//!
//! A from-scratch Rust reproduction of the CGO 2003 paper *"Local
//! Scheduling Techniques for Memory Coherence in a Clustered VLIW
//! Processor with a Distributed Data Cache"* (Gibert, Sánchez, González).
//!
//! This facade crate re-exports the whole toolchain:
//!
//! * [`ir`] — loop-kernel IR and data dependence graphs,
//! * [`arch`] — the word-interleaved cache clustered VLIW machine model,
//! * [`coherence`] — the paper's contribution: MDC chains, DDG
//!   transformations and code specialization,
//! * [`sched`] — the swing modulo scheduler with PrefClus/MinComs cluster
//!   assignment,
//! * [`check`] — the independent static schedule verifier
//!   (translation validation for every emitted schedule),
//! * [`sim`] — the cycle-level stall-on-use simulator,
//! * [`mediabench`] — synthetic Mediabench-like benchmark suites,
//! * [`core`] — the end-to-end pipeline and the experiment drivers that
//!   regenerate every table and figure of the paper,
//! * [`serve`] — the long-running HTTP service with a content-addressed
//!   result cache over the pipeline (`serve` / `servecli` bins).
//!
//! # Quickstart
//!
//! ```
//! use distvliw::arch::MachineConfig;
//! use distvliw::core::{Heuristic, Pipeline, Solution};
//!
//! let machine = MachineConfig::paper_baseline();
//! let suite = distvliw::mediabench::suite("gsmdec").expect("known benchmark");
//! let stats = Pipeline::new(machine)
//!     .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
//!     .expect("pipeline runs");
//! assert!(stats.total_cycles() > 0);
//! assert_eq!(stats.coherence_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use distvliw_arch as arch;
pub use distvliw_check as check;
pub use distvliw_coherence as coherence;
pub use distvliw_core as core;
pub use distvliw_ir as ir;
pub use distvliw_mediabench as mediabench;
pub use distvliw_sched as sched;
pub use distvliw_serve as serve;
pub use distvliw_sim as sim;
