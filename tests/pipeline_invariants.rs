//! Cross-crate integration tests: conservation laws and coherence
//! guarantees that must hold for every benchmark, solution and heuristic.

use distvliw::arch::MachineConfig;
use distvliw::core::{Heuristic, Pipeline, Solution};

const SAMPLE: [&str; 5] = ["epicdec", "g721dec", "gsmdec", "pgpdec", "pegwitenc"];

fn pipeline() -> Pipeline {
    Pipeline::new(MachineConfig::paper_baseline())
}

#[test]
fn accesses_are_conserved_across_solutions() {
    // Every architectural access is classified exactly once; replication
    // must not change the architectural access count.
    let p = pipeline();
    for name in SAMPLE {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let expected = suite.dyn_mem_accesses();
        for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
            let stats = p.run_suite(&suite, solution, Heuristic::PrefClus).unwrap();
            assert_eq!(
                stats.total.accesses.total(),
                expected,
                "{name}/{solution}: classified accesses must equal dynamic accesses"
            );
        }
    }
}

#[test]
fn compute_plus_stall_equals_total() {
    let p = pipeline();
    for name in SAMPLE {
        let suite = distvliw::mediabench::suite(name).unwrap();
        for solution in [Solution::Mdc, Solution::Ddgt] {
            let stats = p.run_suite(&suite, solution, Heuristic::MinComs).unwrap();
            assert_eq!(
                stats.total.total_cycles(),
                stats.total.compute_cycles + stats.total.stall_cycles,
                "{name}/{solution}"
            );
            assert!(stats.total.compute_cycles > 0, "{name}/{solution}");
        }
    }
}

#[test]
fn mdc_and_ddgt_never_violate_coherence() {
    let p = pipeline();
    for suite in distvliw::mediabench::suites() {
        for solution in [Solution::Mdc, Solution::Ddgt] {
            for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                let stats = p.run_suite(&suite, solution, heuristic).unwrap();
                assert_eq!(
                    stats.total.coherence_violations, 0,
                    "{}/{solution}/{heuristic}",
                    suite.name
                );
            }
        }
    }
}

#[test]
fn fraction_of_access_classes_sums_to_one() {
    use distvliw::arch::AccessClass;
    let p = pipeline();
    let suite = distvliw::mediabench::suite("rasta").unwrap();
    let stats = p
        .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
        .unwrap();
    let sum: f64 = AccessClass::ALL
        .iter()
        .map(|&c| stats.total.accesses.fraction(c))
        .sum();
    assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
}

#[test]
fn deterministic_across_runs() {
    let p = pipeline();
    let suite = distvliw::mediabench::suite("jpegdec").unwrap();
    let a = p
        .run_suite(&suite, Solution::Ddgt, Heuristic::MinComs)
        .unwrap();
    let b = p
        .run_suite(&suite, Solution::Ddgt, Heuristic::MinComs)
        .unwrap();
    assert_eq!(a.total, b.total, "pipeline must be deterministic");
}

#[test]
fn interleave_follows_suite() {
    // g721dec is a 2-byte interleave benchmark: a 2-byte-aligned access
    // pattern must classify identically regardless of the pipeline's
    // default interleave, because run_suite overrides it.
    let suite = distvliw::mediabench::suite("g721dec").unwrap();
    let a = Pipeline::new(MachineConfig::paper_baseline())
        .run_suite(&suite, Solution::Free, Heuristic::PrefClus)
        .unwrap();
    let b = Pipeline::new(MachineConfig::paper_baseline().with_interleave(2))
        .run_suite(&suite, Solution::Free, Heuristic::PrefClus)
        .unwrap();
    assert_eq!(a.total, b.total);
}

#[test]
fn nobal_machines_run_end_to_end() {
    let suite = distvliw::mediabench::suite("gsmenc").unwrap();
    for machine in [MachineConfig::nobal_mem(), MachineConfig::nobal_reg()] {
        let p = Pipeline::new(machine);
        let stats = p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        assert!(stats.total.total_cycles() > 0);
        assert_eq!(stats.total.coherence_violations, 0);
    }
}
