//! Property-based tests over randomly generated kernels, exercising the
//! whole stack: graph invariants under transformation, schedule legality
//! and simulator conservation laws.

use std::collections::BTreeSet;

use distvliw::arch::MachineConfig;
use distvliw::coherence::{find_chains, transform, SchedConstraints};
use distvliw::ir::{
    AddressStream, Ddg, DdgBuilder, DepKind, LoopKernel, NodeId, OpKind, PrefMap, Width,
};
use distvliw::sched::{Heuristic, ModuloScheduler};
use distvliw::sim::{simulate_kernel, SimOptions};
use proptest::prelude::*;

/// Strategy: a random well-formed loop kernel with `n_mem` memory ops on
/// a handful of arrays (shared arrays produce real aliasing), plus
/// arithmetic consumers and a sprinkle of conservative dependence edges.
fn arb_kernel() -> impl Strategy<Value = LoopKernel> {
    (
        2usize..10, // memory ops
        1usize..4,  // distinct arrays
        0usize..6,  // arithmetic ops
        proptest::collection::vec(any::<u8>(), 16),
        1u64..6, // trip count scale
    )
        .prop_map(|(n_mem, n_arrays, n_arith, entropy, trip_scale)| {
            let mut b = DdgBuilder::new();
            let mut loads: Vec<NodeId> = Vec::new();
            let mut mems = Vec::new();
            for i in 0..n_mem {
                let is_store = entropy[i % entropy.len()] % 3 == 0 && !loads.is_empty();
                let node = if is_store {
                    let src = loads[usize::from(entropy[(i + 5) % entropy.len()]) % loads.len()];
                    b.store(Width::W4, &[src])
                } else {
                    let l = b.load(Width::W4);
                    loads.push(l);
                    l
                };
                mems.push(node);
            }
            for i in 0..n_arith {
                let srcs: Vec<NodeId> = loads
                    .get(i % loads.len().max(1))
                    .copied()
                    .into_iter()
                    .collect();
                b.op(OpKind::IntAlu, &srcs);
            }
            let g = b.graph();
            // Conservative may-alias edges between memory ops that share
            // an array (assigned below by index % n_arrays).
            let mut edges = Vec::new();
            for (i, &a) in mems.iter().enumerate() {
                for (j, &c) in mems.iter().enumerate().skip(i + 1) {
                    if i % n_arrays != j % n_arrays {
                        continue;
                    }
                    let (src_store, dst_store) = (g.node(a).is_store(), g.node(c).is_store());
                    let kind = match (src_store, dst_store) {
                        (true, true) => DepKind::MemOut,
                        (true, false) => DepKind::MemFlow,
                        (false, true) => DepKind::MemAnti,
                        (false, false) => continue,
                    };
                    // Ops on one array share a stream and alias at every
                    // distance; a correct disambiguator reports each
                    // distance up to the window.
                    edges.push((a, c, kind, 0));
                    edges.push((a, c, kind, 1));
                }
            }
            for (a, c, kind, dist) in edges {
                b.dep(a, c, kind, dist);
            }
            let ddg = b.finish();
            let mem_sites: Vec<_> = ddg
                .mem_nodes()
                .map(|n| (n, ddg.node(n).mem_id().unwrap()))
                .collect();
            let mut kernel = LoopKernel::new("prop", ddg, 16 * trip_scale);
            for (idx, &(_, mem)) in mem_sites.iter().enumerate() {
                let base = 4096 + (idx % n_arrays) as u64 * 0x100;
                for image in [&mut kernel.profile, &mut kernel.exec] {
                    image.insert(mem, AddressStream::Affine { base, stride: 4 });
                }
            }
            kernel
        })
}

/// All dependences of `ddg` hold in the schedule (issue-order semantics).
fn schedule_respects_deps(ddg: &Ddg, s: &distvliw::sched::Schedule) -> bool {
    ddg.deps().all(|(_, d)| {
        if d.src == d.dst {
            return true;
        }
        let a = s.op(d.src);
        let b = s.op(d.dst);
        let min_sep = i64::from(d.kind.min_separation());
        i64::from(b.start) + i64::from(s.ii) * i64::from(d.distance) >= i64::from(a.start) + min_sep
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mdc_chains_partition_memory_ops(kernel in arb_kernel()) {
        let chains = find_chains(&kernel.ddg);
        let mut seen = BTreeSet::new();
        for members in chains.chains() {
            for &n in members {
                prop_assert!(seen.insert(n), "node {n} in two chains");
            }
        }
        // Every memory op belongs to exactly one chain.
        let mem: BTreeSet<_> = kernel.ddg.mem_nodes().collect();
        prop_assert_eq!(seen, mem);
        // Chains are closed under memory dependence edges.
        for (_, d) in kernel.ddg.mem_dep_edges() {
            prop_assert_eq!(chains.chain_of(d.src), chains.chain_of(d.dst));
        }
    }

    #[test]
    fn ddgt_removes_all_ma_edges_and_stays_acyclic(kernel in arb_kernel()) {
        let mut ddg = kernel.ddg.clone();
        let report = transform(&mut ddg, 4);
        prop_assert!(ddg.deps().all(|(_, d)| d.kind != DepKind::MemAnti));
        prop_assert!(!ddg.has_zero_distance_cycle());
        // Every dependent store has exactly 4 instances.
        for group in &report.replica_groups {
            prop_assert_eq!(group.instances.len(), 4);
        }
        // Replicas share the original's memory site.
        for group in &report.replica_groups {
            let site = ddg.node(group.root).mem_id();
            for &i in &group.instances {
                prop_assert_eq!(ddg.node(i).mem_id(), site);
            }
        }
    }

    #[test]
    fn schedules_are_legal_for_all_solutions(kernel in arb_kernel()) {
        let machine = MachineConfig::paper_baseline();
        let sched = ModuloScheduler::new(&machine);
        // Free.
        let s = sched
            .schedule(&kernel.ddg, &SchedConstraints::none(), &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        prop_assert!(schedule_respects_deps(&kernel.ddg, &s));
        // MDC: chains colocated.
        let chains = find_chains(&kernel.ddg);
        let c = SchedConstraints::for_mdc(&chains, &kernel.ddg, None, 4);
        let s = sched.schedule(&kernel.ddg, &c, &PrefMap::new(), Heuristic::MinComs).unwrap();
        prop_assert!(schedule_respects_deps(&kernel.ddg, &s));
        for (_, members) in chains.nontrivial() {
            let cluster = s.op(members[0]).cluster;
            prop_assert!(members.iter().all(|&n| s.op(n).cluster == cluster));
        }
        // DDGT: instances pinned one per cluster.
        let mut ddg = kernel.ddg.clone();
        let report = transform(&mut ddg, 4);
        let c = SchedConstraints::for_ddgt(&report);
        let s = sched.schedule(&ddg, &c, &PrefMap::new(), Heuristic::MinComs).unwrap();
        prop_assert!(schedule_respects_deps(&ddg, &s));
        for group in &report.replica_groups {
            let mut clusters: Vec<_> = group.instances.iter().map(|&i| s.op(i).cluster).collect();
            clusters.sort_unstable();
            prop_assert_eq!(clusters, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn simulation_conserves_accesses_and_never_violates_under_mdc(kernel in arb_kernel()) {
        let machine = MachineConfig::paper_baseline();
        let chains = find_chains(&kernel.ddg);
        let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, None, 4);
        let s = ModuloScheduler::new(&machine)
            .schedule(&kernel.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        let stats = simulate_kernel(&machine, &kernel, &s, SimOptions::default());
        prop_assert_eq!(stats.accesses.total(), kernel.dyn_mem_accesses());
        prop_assert_eq!(stats.coherence_violations, 0);
        prop_assert_eq!(stats.total_cycles(), stats.compute_cycles + stats.stall_cycles);
        prop_assert!(stats.compute_cycles >= u64::from(s.span));
    }

    #[test]
    fn ddgt_simulation_is_coherent_too(kernel in arb_kernel()) {
        let machine = MachineConfig::paper_baseline();
        let mut k = kernel.clone();
        let report = transform(&mut k.ddg, 4);
        let constraints = SchedConstraints::for_ddgt(&report);
        let s = ModuloScheduler::new(&machine)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::PrefClus)
            .unwrap();
        let stats = simulate_kernel(&machine, &k, &s, SimOptions::default());
        prop_assert_eq!(stats.coherence_violations, 0);
        // Replication never changes the architectural access count.
        prop_assert_eq!(stats.accesses.total(), kernel.dyn_mem_accesses());
    }
}
