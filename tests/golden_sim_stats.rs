//! Golden parity tests for the cycle-level simulator.
//!
//! The dense event-queue / batched address-stream rewrite of the
//! simulator hot path must be a pure performance change: for every
//! bundled Mediabench kernel, every coherence solution, both
//! cluster-assignment heuristics and both latency-relaxation modes, the
//! simulated statistics (compute/stall cycles, the five access-class
//! counters, coherence violations, dynamic copies and memory-bus
//! occupancy) have to stay **byte identical** to the snapshot in
//! `tests/golden/sim_stats.txt`.
//!
//! The snapshot was recorded against the pre-rewrite per-cycle scan
//! engine (with only the additive bus-occupancy counter applied first,
//! since the seed engine did not report bus busy cycles), so a passing
//! run proves the rewrite changed no statistic. Regenerate it (only
//! when a change is *meant* to alter simulated behaviour) with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_sim_stats
//! ```

use distvliw::arch::MachineConfig;
use distvliw::coherence::{find_chains, transform, SchedConstraints};
use distvliw::ir::profile::preferred_clusters;
use distvliw::ir::LoopKernel;
use distvliw::sched::{Heuristic, ModuloScheduler};
use distvliw::sim::{simulate_kernel, SimOptions};

mod common;
use common::render_stats;

const GOLDEN_PATH: &str = "tests/golden/sim_stats.txt";

/// Compiles and simulates `kernel` the same way the pipeline does for
/// each solution, appending one snapshot line per configuration (the
/// same 312-configuration grid as `tests/golden_parity.rs`).
fn snapshot_kernel(machine: &MachineConfig, kernel: &LoopKernel, out: &mut Vec<String>) {
    let prefs = preferred_clusters(kernel, machine.n_clusters, |a| machine.home_cluster(a));
    for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
        for solution in ["free", "mdc", "ddgt"] {
            let mut kernel = kernel.clone();
            let constraints = match solution {
                "free" => SchedConstraints::none(),
                "mdc" => {
                    let chains = find_chains(&kernel.ddg);
                    let pref_arg = (heuristic == Heuristic::PrefClus).then_some(&prefs);
                    SchedConstraints::for_mdc(&chains, &kernel.ddg, pref_arg, machine.n_clusters)
                }
                _ => {
                    let report = transform(&mut kernel.ddg, machine.n_clusters);
                    SchedConstraints::for_ddgt(&report)
                }
            };
            for relax in [true, false] {
                let schedule = ModuloScheduler::new(machine)
                    .with_latency_relaxation(relax)
                    .schedule(&kernel.ddg, &constraints, &prefs, heuristic)
                    .expect("bundled kernels schedule");
                let stats = simulate_kernel(machine, &kernel, &schedule, SimOptions::default());
                out.push(format!(
                    "{} {solution} {heuristic} relax={relax} {}",
                    kernel.name,
                    render_stats(&stats)
                ));
            }
        }
    }
}

fn current_snapshot() -> Vec<String> {
    let mut lines = Vec::new();
    for suite in distvliw::mediabench::suites() {
        let machine = MachineConfig::paper_baseline().with_interleave(suite.interleave_bytes);
        for kernel in &suite.kernels {
            snapshot_kernel(&machine, kernel, &mut lines);
        }
    }
    lines
}

#[test]
fn sim_stats_match_golden_snapshot() {
    let snapshot = current_snapshot();
    let rendered: String = snapshot.iter().map(|l| format!("{l}\n")).collect();

    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("updated {GOLDEN_PATH} with {} entries", snapshot.len());
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; run GOLDEN_UPDATE=1 cargo test --test golden_sim_stats");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        snapshot.len(),
        "configuration count changed: golden {} vs current {}",
        golden_lines.len(),
        snapshot.len()
    );
    for (line, want) in snapshot.iter().zip(&golden_lines) {
        assert_eq!(
            line.as_str(),
            *want,
            "simulated statistics diverged from golden snapshot.\n current: {line}\n  golden: {want}"
        );
    }
}
