//! Golden parity tests for the modulo scheduler.
//!
//! The dense-map / transactional-MRT rewrite of the scheduling hot path
//! must be a pure performance change: for every bundled Mediabench
//! kernel, every coherence solution and both cluster-assignment
//! heuristics, the produced schedule (II, span, per-op cluster/cycle,
//! assumed latency classes and copy operations) has to stay **byte
//! identical** to the snapshot in `tests/golden/schedules.txt`.
//!
//! Regenerate the snapshot (only when a change is *meant* to alter
//! schedules) with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_parity
//! ```

use std::fmt::Write as _;

use distvliw::arch::MachineConfig;
use distvliw::coherence::{find_chains, transform, SchedConstraints};
use distvliw::ir::profile::preferred_clusters;
use distvliw::ir::LoopKernel;
use distvliw::sched::{Heuristic, ModuloScheduler, Schedule};

mod common;
use common::schedule_fingerprint;

const GOLDEN_PATH: &str = "tests/golden/schedules.txt";

/// Renders the placement of one schedule, for diagnostics on mismatch.
fn describe(s: &Schedule) -> String {
    let mut text = format!("II={} span={} copies={}\n", s.ii, s.span, s.copies.len());
    for (n, op) in &s.ops {
        let _ = writeln!(
            text,
            "  {n}: cluster {} cycle {} {:?}",
            op.cluster, op.start, op.assumed_class
        );
    }
    for c in &s.copies {
        let _ = writeln!(
            text,
            "  copy {}: {}->{} cycle {}",
            c.producer, c.from_cluster, c.to_cluster, c.start
        );
    }
    text
}

/// Schedules `kernel` the same way the pipeline does for each solution,
/// and appends one snapshot line per configuration.
fn snapshot_kernel(
    machine: &MachineConfig,
    kernel: &LoopKernel,
    out: &mut Vec<(String, Schedule)>,
) {
    let prefs = preferred_clusters(kernel, machine.n_clusters, |a| machine.home_cluster(a));
    for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
        for solution in ["free", "mdc", "ddgt"] {
            let mut kernel = kernel.clone();
            let constraints = match solution {
                "free" => SchedConstraints::none(),
                "mdc" => {
                    let chains = find_chains(&kernel.ddg);
                    let pref_arg = (heuristic == Heuristic::PrefClus).then_some(&prefs);
                    SchedConstraints::for_mdc(&chains, &kernel.ddg, pref_arg, machine.n_clusters)
                }
                _ => {
                    let report = transform(&mut kernel.ddg, machine.n_clusters);
                    SchedConstraints::for_ddgt(&report)
                }
            };
            for relax in [true, false] {
                let schedule = ModuloScheduler::new(machine)
                    .with_latency_relaxation(relax)
                    .schedule(&kernel.ddg, &constraints, &prefs, heuristic)
                    .expect("bundled kernels schedule");
                let key = format!(
                    "{} {solution} {heuristic} relax={relax} II={} span={} copies={} fp={:016x}",
                    kernel.name,
                    schedule.ii,
                    schedule.span,
                    schedule.copies.len(),
                    schedule_fingerprint(&schedule)
                );
                out.push((key, schedule));
            }
        }
    }
}

fn current_snapshot() -> Vec<(String, Schedule)> {
    let mut lines = Vec::new();
    for suite in distvliw::mediabench::suites() {
        let machine = MachineConfig::paper_baseline().with_interleave(suite.interleave_bytes);
        for kernel in &suite.kernels {
            snapshot_kernel(&machine, kernel, &mut lines);
        }
    }
    lines
}

#[test]
fn schedules_match_golden_snapshot() {
    let snapshot = current_snapshot();
    let rendered: String = snapshot.iter().map(|(k, _)| format!("{k}\n")).collect();

    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("updated {GOLDEN_PATH} with {} entries", snapshot.len());
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; run GOLDEN_UPDATE=1 cargo test --test golden_parity");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        snapshot.len(),
        "configuration count changed: golden {} vs current {}",
        golden_lines.len(),
        snapshot.len()
    );
    for ((key, schedule), want) in snapshot.iter().zip(&golden_lines) {
        assert_eq!(
            key.as_str(),
            *want,
            "schedule diverged from golden snapshot.\n current: {key}\n  golden: {want}\nfull placement:\n{}",
            describe(schedule)
        );
    }
}
