//! Property tests over the sweep's machine axis: for random synthetic
//! kernels across 2/4/8/16 clusters, every emitted schedule must
//! respect the MRT resource limits (per-cluster functional units, the
//! shared register buses) and all dependence separations, and the
//! simulated statistics must satisfy their conservation invariants
//! (violations ≤ accesses, `bus_busy_cycles` ≤ the bus drain window ×
//! memory bus count). This pins the large-machine configurations the
//! sensitivity sweep opened — the seed suite only ever exercised the
//! paper's 4-cluster machine.

use std::collections::BTreeMap;

use distvliw::arch::MachineConfig;
use distvliw::coherence::{find_chains, transform, SchedConstraints};
use distvliw::core::experiments::sweep_machine;
use distvliw::ir::{
    AddressStream, Ddg, DdgBuilder, DepKind, FuClass, LoopKernel, NodeId, OpKind, PrefMap, Width,
};
use distvliw::mediabench::eject_stress_kernel;
use distvliw::sched::{Heuristic, ModuloScheduler, Mrt, Schedule};
use distvliw::sim::{simulate_kernel, SimOptions};
use proptest::prelude::*;

/// The sweep's cluster-count axis.
const CLUSTER_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Strategy: a random well-formed kernel — memory ops over a few arrays
/// (shared arrays alias for real), arithmetic consumers, conservative
/// edges — paired with one of the swept cluster counts.
fn arb_case() -> impl Strategy<Value = (LoopKernel, usize)> {
    (
        2usize..10, // memory ops
        1usize..4,  // distinct arrays
        0usize..8,  // arithmetic ops
        proptest::collection::vec(any::<u8>(), 16),
        1u64..5,   // trip scale
        0usize..4, // cluster-count index
    )
        .prop_map(|(n_mem, n_arrays, n_arith, entropy, trip_scale, ci)| {
            let mut b = DdgBuilder::new();
            let mut loads: Vec<NodeId> = Vec::new();
            let mut mems = Vec::new();
            for i in 0..n_mem {
                let is_store = entropy[i % entropy.len()] % 3 == 0 && !loads.is_empty();
                let node = if is_store {
                    let src = loads[usize::from(entropy[(i + 5) % entropy.len()]) % loads.len()];
                    b.store(Width::W4, &[src])
                } else {
                    let l = b.load(Width::W4);
                    loads.push(l);
                    l
                };
                mems.push(node);
            }
            for i in 0..n_arith {
                let srcs: Vec<NodeId> = loads
                    .get(i % loads.len().max(1))
                    .copied()
                    .into_iter()
                    .collect();
                b.op(
                    if i % 3 == 0 {
                        OpKind::IntMul
                    } else {
                        OpKind::IntAlu
                    },
                    &srcs,
                );
            }
            let g = b.graph();
            let mut edges = Vec::new();
            for (i, &a) in mems.iter().enumerate() {
                for (j, &c) in mems.iter().enumerate().skip(i + 1) {
                    if i % n_arrays != j % n_arrays {
                        continue;
                    }
                    let kind = match (g.node(a).is_store(), g.node(c).is_store()) {
                        (true, true) => DepKind::MemOut,
                        (true, false) => DepKind::MemFlow,
                        (false, true) => DepKind::MemAnti,
                        (false, false) => continue,
                    };
                    edges.push((a, c, kind, 0));
                    edges.push((a, c, kind, 1));
                }
            }
            for (a, c, kind, dist) in edges {
                b.dep(a, c, kind, dist);
            }
            let ddg = b.finish();
            let mem_sites: Vec<_> = ddg
                .mem_nodes()
                .map(|n| (n, ddg.node(n).mem_id().unwrap()))
                .collect();
            let mut kernel = LoopKernel::new("prop", ddg, 16 * trip_scale);
            for (idx, &(_, mem)) in mem_sites.iter().enumerate() {
                let base = 4096 + (idx % n_arrays) as u64 * 0x100;
                for image in [&mut kernel.profile, &mut kernel.exec] {
                    image.insert(mem, AddressStream::Affine { base, stride: 4 });
                }
            }
            (kernel, CLUSTER_COUNTS[ci])
        })
}

/// All dependences hold in the schedule (issue-order separations).
fn respects_deps(ddg: &Ddg, s: &Schedule) -> bool {
    ddg.deps().all(|(_, d)| {
        if d.src == d.dst {
            return true;
        }
        let a = s.op(d.src);
        let b = s.op(d.dst);
        let min_sep = i64::from(d.kind.min_separation());
        i64::from(b.start) + i64::from(s.ii) * i64::from(d.distance) >= i64::from(a.start) + min_sep
    })
}

/// Rebuilds the modulo reservation table from the finished schedule and
/// checks every machine limit: per-cluster per-class FU slots, and the
/// shared register buses (each copy occupies `reg_buses.latency`
/// consecutive modulo slots, the same accounting `sched::Mrt` uses).
fn respects_mrt(machine: &MachineConfig, ddg: &Ddg, s: &Schedule) -> Result<(), String> {
    let ii = s.ii;
    let mut fu: BTreeMap<(usize, usize, u32), u32> = BTreeMap::new();
    for (&n, op) in &s.ops {
        let Some(class) = ddg.node(n).kind.fu_class() else {
            continue;
        };
        if op.cluster >= machine.n_clusters {
            return Err(format!("node {n} placed in cluster {}", op.cluster));
        }
        let slot = op.start % ii;
        let used = fu.entry((op.cluster, class.index(), slot)).or_insert(0);
        *used += 1;
        let cap = match class {
            FuClass::Integer => machine.fu.integer,
            FuClass::Fp => machine.fu.fp,
            FuClass::Memory => machine.fu.memory,
        } as u32;
        if *used > cap {
            return Err(format!(
                "{class} units oversubscribed in cluster {} slot {slot}: {used} > {cap}",
                op.cluster
            ));
        }
    }
    let mut bus = vec![0u32; ii as usize];
    for c in &s.copies {
        if c.from_cluster >= machine.n_clusters || c.to_cluster >= machine.n_clusters {
            return Err(format!("copy of {} crosses a phantom cluster", c.producer));
        }
        for i in 0..machine.reg_buses.latency {
            let slot = ((c.start + i) % ii) as usize;
            bus[slot] += 1;
            if bus[slot] > machine.reg_buses.count as u32 {
                return Err(format!(
                    "register buses oversubscribed at slot {slot}: {} > {}",
                    bus[slot], machine.reg_buses.count
                ));
            }
        }
    }
    Ok(())
}

/// Runs the full legality + simulation invariant check for one
/// compiled configuration.
fn check_solution(
    machine: &MachineConfig,
    kernel: &LoopKernel,
    ddg: &Ddg,
    constraints: &SchedConstraints,
    heuristic: Heuristic,
) -> Result<(), TestCaseError> {
    let s = ModuloScheduler::new(machine)
        .schedule(ddg, constraints, &PrefMap::new(), heuristic)
        .expect("random kernels schedule");
    prop_assert!(respects_deps(ddg, &s));
    // The independent verifier must agree with the inline invariants:
    // one disagreement means either the scheduler or the checker is
    // wrong, and both are pinned here.
    let report = distvliw::check::check_schedule(ddg, machine, constraints, heuristic, &s);
    prop_assert!(
        report.is_clean(),
        "{}-cluster checker violation: {report}",
        machine.n_clusters
    );
    if let Err(e) = respects_mrt(machine, ddg, &s) {
        return Err(TestCaseError::fail(format!(
            "{}-cluster MRT violation: {e}",
            machine.n_clusters
        )));
    }
    let stats = simulate_kernel(machine, kernel, &s, SimOptions::default());
    prop_assert!(
        stats.coherence_violations <= stats.accesses.total(),
        "violations {} exceed accesses {}",
        stats.coherence_violations,
        stats.accesses.total()
    );
    // The bus capacity invariant: at most `count` concurrent transfers
    // over the run's drain window (which is at least `total_cycles`;
    // fire-and-forget stores can keep the buses busy past the last
    // issue cycle, which is why the window is the drain, not the issue
    // span).
    prop_assert!(stats.bus_drain_cycles >= stats.total_cycles());
    prop_assert!(
        stats.bus_busy_cycles <= stats.bus_drain_cycles * machine.mem_buses.count as u64,
        "bus busy {} exceeds {} drain cycles × {} buses",
        stats.bus_busy_cycles,
        stats.bus_drain_cycles,
        machine.mem_buses.count
    );
    prop_assert_eq!(stats.accesses.total(), kernel.dyn_mem_accesses());
    prop_assert_eq!(
        stats.total_cycles(),
        stats.compute_cycles + stats.stall_cycles
    );
    Ok(())
}

/// A long MDC-pinned memory chain at `n_clusters`, scheduled with and
/// without the ejection fallback. Returns `(eject, restart)` schedule +
/// stats pairs.
fn schedule_stress(
    n_clusters: usize,
    chain_len: usize,
) -> (
    LoopKernel,
    SchedConstraints,
    PrefMap,
    MachineConfig,
    (Schedule, distvliw::sched::SchedStats),
    (Schedule, distvliw::sched::SchedStats),
) {
    let machine = sweep_machine(
        &MachineConfig::paper_baseline(),
        n_clusters,
        MachineConfig::paper_baseline().mem_buses,
    );
    let (kernel, prefs) = eject_stress_kernel(n_clusters, chain_len);
    let chains = find_chains(&kernel.ddg);
    let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, Some(&prefs), n_clusters);
    let eject = ModuloScheduler::new(&machine)
        .schedule_with_stats(&kernel.ddg, &constraints, &prefs, Heuristic::PrefClus)
        .expect("stress kernel schedules with ejection");
    let restart = ModuloScheduler::new(&machine)
        .with_ejection(false)
        .schedule_with_stats(&kernel.ddg, &constraints, &prefs, Heuristic::PrefClus)
        .expect("stress kernel schedules without ejection");
    (kernel, constraints, prefs, machine, eject, restart)
}

#[test]
fn ejection_beats_restart_on_pinned_memory_chains() {
    // The adversarial shape of the ISSUE: a chain colocated (and
    // profile-pinned) in cluster 0 at its constrained MII, with a
    // higher-priority intruder load occupying the one memory slot the
    // chain needs. Restart-only must surrender the II; ejection evicts
    // the intruder and keeps it — a *strictly* lower II at 8 and 16
    // clusters.
    for n_clusters in [8usize, 16] {
        let chain_len = n_clusters; // constrained MII == chain length
        let (kernel, _, _, machine, (es, estat), (rs, rstat)) =
            schedule_stress(n_clusters, chain_len);
        assert!(
            es.ii < rs.ii,
            "{n_clusters} clusters: ejection II {} must beat restart II {}",
            es.ii,
            rs.ii
        );
        assert_eq!(es.ii, chain_len as u32, "chain fits at its bound");
        assert!(estat.ejections > 0, "the win must come from ejection");
        assert_eq!(rstat.ejections, 0);
        // Both schedules stay legal.
        assert!(respects_deps(&kernel.ddg, &es));
        assert!(respects_deps(&kernel.ddg, &rs));
        respects_mrt(&machine, &kernel.ddg, &es).unwrap();
        respects_mrt(&machine, &kernel.ddg, &rs).unwrap();
    }
}

#[test]
fn ii_seed_reproduces_the_cold_search_with_less_work() {
    // Seeding with the achieved II must reproduce the exact same
    // schedule while skipping the re-failing II range below it.
    let (kernel, constraints, prefs, machine, (cold, cold_stat), _) = schedule_stress(8, 8);
    let (warm, warm_stat) = ModuloScheduler::new(&machine)
        .with_ii_seed(Some(cold.ii))
        .schedule_with_stats(&kernel.ddg, &constraints, &prefs, Heuristic::PrefClus)
        .expect("seeded search schedules");
    assert_eq!(warm, cold, "a warm seed must not change the schedule");
    assert_eq!(
        warm_stat.seeded_at,
        Some(cold.ii.saturating_sub(2)).filter(|&s| s > warm_stat.mii)
    );
    assert!(warm_stat.placement_attempts <= cold_stat.placement_attempts);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schedules_respect_resources_and_sim_invariants_at_every_scale(case in arb_case()) {
        let (kernel, n_clusters) = case;
        let machine = sweep_machine(
            &MachineConfig::paper_baseline(),
            n_clusters,
            MachineConfig::paper_baseline().mem_buses,
        );

        // Free.
        check_solution(
            &machine,
            &kernel,
            &kernel.ddg,
            &SchedConstraints::none(),
            Heuristic::MinComs,
        )?;

        // MDC: chains colocated in one (real) cluster.
        let chains = find_chains(&kernel.ddg);
        let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, None, n_clusters);
        check_solution(&machine, &kernel, &kernel.ddg, &constraints, Heuristic::PrefClus)?;

        // DDGT: one replica instance per cluster, for *this* cluster count.
        let mut k = kernel.clone();
        let report = transform(&mut k.ddg, n_clusters);
        for group in &report.replica_groups {
            prop_assert_eq!(group.instances.len(), n_clusters);
        }
        let constraints = SchedConstraints::for_ddgt(&report);
        check_solution(&machine, &k, &k.ddg, &constraints, Heuristic::MinComs)?;
    }

    #[test]
    fn ejection_never_returns_a_higher_ii(case in arb_case()) {
        // For every random kernel, at every swept scale, under MDC
        // colocation (the constraint family that used to trigger the
        // degenerate II blowup): the ejection scheduler must never do
        // worse than the restart-only search, and its schedules must
        // stay legal.
        let (kernel, n_clusters) = case;
        let machine = sweep_machine(
            &MachineConfig::paper_baseline(),
            n_clusters,
            MachineConfig::paper_baseline().mem_buses,
        );
        let chains = find_chains(&kernel.ddg);
        let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, None, n_clusters);
        for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
            let eject = ModuloScheduler::new(&machine)
                .schedule(&kernel.ddg, &constraints, &PrefMap::new(), heuristic)
                .expect("ejection scheduler places random kernels");
            let restart = ModuloScheduler::new(&machine)
                .with_ejection(false)
                .schedule(&kernel.ddg, &constraints, &PrefMap::new(), heuristic)
                .expect("restart-only scheduler places random kernels");
            prop_assert!(
                eject.ii <= restart.ii,
                "{n_clusters} clusters/{heuristic}: ejection II {} vs restart II {}",
                eject.ii,
                restart.ii
            );
            prop_assert!(respects_deps(&kernel.ddg, &eject));
            if let Err(e) = respects_mrt(&machine, &kernel.ddg, &eject) {
                return Err(TestCaseError::fail(format!(
                    "{n_clusters}-cluster ejection MRT violation: {e}"
                )));
            }
        }
    }

    #[test]
    fn mrt_rollback_is_byte_identical_after_rejected_ejection_chains(
        ops in proptest::collection::vec((0usize..4, 0u32..8, 0usize..3), 1..40),
        ii in 1u32..9,
    ) {
        // Drive the reservation table through a random committed state,
        // then a random ejection chain (targeted releases interleaved
        // with fresh reservations), then reject it: the table must come
        // back *byte-identical* to the checkpoint snapshot.
        let machine = MachineConfig::paper_baseline();
        let mut mrt = Mrt::new(&machine, ii);
        let classes = [FuClass::Integer, FuClass::Fp, FuClass::Memory];
        let mut committed: Vec<(usize, FuClass, u32)> = Vec::new();
        let (seed, chain) = ops.split_at(ops.len() / 2);
        for &(cluster, cycle, class) in seed {
            let class = classes[class];
            if mrt.fu_free(cluster, class, cycle) {
                mrt.reserve_fu(cluster, class, cycle);
                committed.push((cluster, class, cycle));
            } else if mrt.bus_free(cycle) {
                mrt.reserve_bus(cycle);
            }
        }
        let before = mrt.cells();
        let mark = mrt.checkpoint();
        for (i, &(cluster, cycle, class)) in chain.iter().enumerate() {
            // Alternate targeted releases of committed cells with new
            // reservations, like a real ejection chain does.
            if i % 2 == 0 && !committed.is_empty() {
                let (c, cl, cy) = committed[i % committed.len()];
                mrt.release_fu(c, cl, cy);
                committed.retain(|&e| e != (c, cl, cy));
            } else {
                let class = classes[class];
                if mrt.fu_free(cluster, class, cycle) {
                    mrt.reserve_fu(cluster, class, cycle);
                } else if mrt.bus_free(cycle) {
                    mrt.reserve_bus(cycle);
                }
            }
        }
        mrt.rollback(mark);
        prop_assert_eq!(mrt.cells(), before, "rejected chain must restore the table exactly");
    }

    #[test]
    fn mdc_and_ddgt_stay_coherent_at_every_scale(case in arb_case()) {
        let (kernel, n_clusters) = case;
        let machine = sweep_machine(
            &MachineConfig::paper_baseline(),
            n_clusters,
            MachineConfig::paper_baseline().mem_buses,
        );
        let chains = find_chains(&kernel.ddg);
        let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, None, n_clusters);
        let s = ModuloScheduler::new(&machine)
            .schedule(&kernel.ddg, &constraints, &PrefMap::new(), Heuristic::MinComs)
            .unwrap();
        let stats = simulate_kernel(&machine, &kernel, &s, SimOptions::default());
        prop_assert_eq!(stats.coherence_violations, 0);

        let mut k = kernel.clone();
        let report = transform(&mut k.ddg, n_clusters);
        let constraints = SchedConstraints::for_ddgt(&report);
        let s = ModuloScheduler::new(&machine)
            .schedule(&k.ddg, &constraints, &PrefMap::new(), Heuristic::PrefClus)
            .unwrap();
        let stats = simulate_kernel(&machine, &k, &s, SimOptions::default());
        prop_assert_eq!(stats.coherence_violations, 0);
        prop_assert_eq!(stats.accesses.total(), kernel.dyn_mem_accesses());
    }
}
