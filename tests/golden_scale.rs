//! Golden parity tests for the large-machine (8- and 16-cluster)
//! configurations the sensitivity sweep opened.
//!
//! The 4-cluster paper machine is pinned by `tests/golden_parity.rs`
//! and `tests/golden_sim_stats.rs`; this file extends the net to the
//! scaled machines ([`sweep_machine`] at 8 and 16 clusters, paper
//! buses) over a mixed workload — two synthetic benchmarks plus the
//! bundled recorded traces — so future refactors cannot silently change
//! large-machine scheduling or simulated behaviour. Each snapshot line
//! pins the schedule (II, span, copy count, a fingerprint of every
//! placement) *and* the simulated statistics.
//!
//! Regenerate (only when a change is *meant* to alter behaviour) with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_scale
//! ```

use distvliw::arch::MachineConfig;
use distvliw::coherence::{find_chains, transform, SchedConstraints};
use distvliw::core::experiments::sweep_machine;
use distvliw::ir::profile::preferred_clusters;
use distvliw::ir::{LoopKernel, Suite};
use distvliw::sched::{Heuristic, ModuloScheduler};
use distvliw::sim::{simulate_kernel, SimOptions};

mod common;
use common::{render_stats, schedule_fingerprint};

const GOLDEN_PATH: &str = "tests/golden/scale_stats.txt";

/// The swept cluster counts not already covered by the 4-cluster golden
/// files.
const CLUSTER_COUNTS: [usize; 2] = [8, 16];

/// The pinned workload: chained + streaming synthetics and both bundled
/// traces.
fn pinned_suites() -> Vec<Suite> {
    let mut suites = vec![
        distvliw::mediabench::suite("gsmdec").expect("bundled benchmark"),
        distvliw::mediabench::suite("jpegenc").expect("bundled benchmark"),
    ];
    suites.extend(distvliw::mediabench::trace_suites());
    suites
}

/// Compiles and simulates `kernel` the same way the pipeline does,
/// appending one line per (solution, heuristic) configuration.
fn snapshot_kernel(
    n_clusters: usize,
    machine: &MachineConfig,
    suite: &str,
    kernel: &LoopKernel,
    out: &mut Vec<String>,
) {
    let prefs = preferred_clusters(kernel, machine.n_clusters, |a| machine.home_cluster(a));
    for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
        for solution in ["free", "mdc", "ddgt"] {
            let mut kernel = kernel.clone();
            let constraints = match solution {
                "free" => SchedConstraints::none(),
                "mdc" => {
                    let chains = find_chains(&kernel.ddg);
                    let pref_arg = (heuristic == Heuristic::PrefClus).then_some(&prefs);
                    SchedConstraints::for_mdc(&chains, &kernel.ddg, pref_arg, machine.n_clusters)
                }
                _ => {
                    let report = transform(&mut kernel.ddg, machine.n_clusters);
                    SchedConstraints::for_ddgt(&report)
                }
            };
            let schedule = ModuloScheduler::new(machine)
                .schedule(&kernel.ddg, &constraints, &prefs, heuristic)
                .expect("pinned kernels schedule at every scale");
            let stats = simulate_kernel(machine, &kernel, &schedule, SimOptions::default());
            out.push(format!(
                "n={n_clusters} {suite}/{} {solution} {heuristic} II={} span={} copies={} fp={:016x} {}",
                kernel.name,
                schedule.ii,
                schedule.span,
                schedule.copies.len(),
                schedule_fingerprint(&schedule),
                render_stats(&stats)
            ));
        }
    }
}

fn current_snapshot() -> Vec<String> {
    let base = MachineConfig::paper_baseline();
    let mut lines = Vec::new();
    for n_clusters in CLUSTER_COUNTS {
        for suite in pinned_suites() {
            let machine = sweep_machine(&base, n_clusters, base.mem_buses)
                .with_interleave(suite.interleave_bytes);
            for kernel in &suite.kernels {
                snapshot_kernel(n_clusters, &machine, &suite.name, kernel, &mut lines);
            }
        }
    }
    lines
}

#[test]
fn large_machine_behaviour_matches_golden_snapshot() {
    let snapshot = current_snapshot();
    let rendered: String = snapshot.iter().map(|l| format!("{l}\n")).collect();

    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("updated {GOLDEN_PATH} with {} entries", snapshot.len());
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; run GOLDEN_UPDATE=1 cargo test --test golden_scale");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        snapshot.len(),
        "configuration count changed: golden {} vs current {}",
        golden_lines.len(),
        snapshot.len()
    );
    for (line, want) in snapshot.iter().zip(&golden_lines) {
        assert_eq!(
            line.as_str(),
            *want,
            "large-machine behaviour diverged from golden snapshot.\n current: {line}\n  golden: {want}"
        );
    }
}
