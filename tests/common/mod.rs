//! Helpers shared by the golden test binaries (`golden_parity`,
//! `golden_sim_stats`, `golden_scale`): the schedule fingerprint and
//! the statistics line format. One definition keeps every snapshot
//! pinning the same surface — a counter added to [`SimStats`] or a
//! change to the fingerprint scheme is either reflected in all golden
//! files at once or in none.
#![allow(dead_code)] // each test binary uses a subset

use std::fmt::Write as _;

use distvliw::arch::AccessClass;
use distvliw::sched::Schedule;
use distvliw::sim::SimStats;

/// FNV-1a over the full placement description (clusters, cycles,
/// assumed latency classes, copies), so a golden file stays compact
/// while still pinning every op.
pub fn schedule_fingerprint(s: &Schedule) -> u64 {
    let mut text = String::new();
    for (n, op) in &s.ops {
        let class = op
            .assumed_class
            .map_or_else(|| "-".to_string(), |c| format!("{c:?}"));
        let _ = writeln!(text, "{n} c{} t{} {class}", op.cluster, op.start);
    }
    for c in &s.copies {
        let _ = writeln!(
            text,
            "copy {} {}->{} t{}",
            c.producer, c.from_cluster, c.to_cluster, c.start
        );
    }
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

/// One snapshot line: every *pinned* counter of [`SimStats`], spelled
/// out so a diff names the exact statistic that moved. (The derived
/// `bus_drain_cycles` window is deliberately not pinned: it is bounded
/// below by counters that are.)
pub fn render_stats(stats: &SimStats) -> String {
    format!(
        "compute={} stall={} lh={} rh={} lm={} rm={} cb={} viol={} comm={} bus={} iters={}",
        stats.compute_cycles,
        stats.stall_cycles,
        stats.accesses.get(AccessClass::LocalHit),
        stats.accesses.get(AccessClass::RemoteHit),
        stats.accesses.get(AccessClass::LocalMiss),
        stats.accesses.get(AccessClass::RemoteMiss),
        stats.accesses.get(AccessClass::Combined),
        stats.coherence_violations,
        stats.comm_ops,
        stats.bus_busy_cycles,
        stats.iterations,
    )
}
