//! Shape-level regression tests against the paper's evaluation claims.
//! Absolute numbers differ (our substrate is a synthetic simulator, not
//! the authors' IMPACT testbed); what must hold is *who wins, by roughly
//! what factor, and where the crossovers fall*.

use distvliw::arch::{AttractionBufferConfig, MachineConfig};
use distvliw::coherence::{chain_stats, specialize_kernel};
use distvliw::core::experiments::{sweep_default_suites, sweep_machine};
use distvliw::core::{Heuristic, Pipeline, Solution};

/// Benchmarks with large chains, where the solutions differ most.
const CHAINED: [&str; 3] = ["epicdec", "pgpdec", "rasta"];

/// Per-kernel initiation intervals the *seed* (restart-only) scheduler
/// achieved on the gsmdec + recorded-trace mix across the sweep's
/// cluster axis, recorded immediately before the ejection scheduler
/// landed. One line per `(suite, clusters, solution, heuristic)` cell.
const SEED_IIS: &[&str] = &[
    "gsmdec 2 Free PrefClus 15,25",
    "gsmdec 2 Free MinComs 15,25",
    "gsmdec 2 MDC PrefClus 17,25",
    "gsmdec 2 MDC MinComs 17,25",
    "gsmdec 2 DDGT PrefClus 15,25",
    "gsmdec 2 DDGT MinComs 15,25",
    "gsmdec 4 Free PrefClus 11,13",
    "gsmdec 4 Free MinComs 11,13",
    "gsmdec 4 MDC PrefClus 8,13",
    "gsmdec 4 MDC MinComs 8,13",
    "gsmdec 4 DDGT PrefClus 12,13",
    "gsmdec 4 DDGT MinComs 12,13",
    "gsmdec 8 Free PrefClus 9,7",
    "gsmdec 8 Free MinComs 9,7",
    "gsmdec 8 MDC PrefClus 8,7",
    "gsmdec 8 MDC MinComs 8,7",
    "gsmdec 8 DDGT PrefClus 20,7",
    "gsmdec 8 DDGT MinComs 20,7",
    "gsmdec 16 Free PrefClus 11,4",
    "gsmdec 16 Free MinComs 11,4",
    "gsmdec 16 MDC PrefClus 8,4",
    "gsmdec 16 MDC MinComs 8,4",
    "gsmdec 16 DDGT PrefClus 36,4",
    "gsmdec 16 DDGT MinComs 36,4",
    "fir8 2 Free PrefClus 9,6",
    "fir8 2 Free MinComs 9,6",
    "fir8 2 MDC PrefClus 10,6",
    "fir8 2 MDC MinComs 9,6",
    "fir8 2 DDGT PrefClus 11,6",
    "fir8 2 DDGT MinComs 11,6",
    "fir8 4 Free PrefClus 5,3",
    "fir8 4 Free MinComs 5,3",
    "fir8 4 MDC PrefClus 7,3",
    "fir8 4 MDC MinComs 6,3",
    "fir8 4 DDGT PrefClus 6,3",
    "fir8 4 DDGT MinComs 6,3",
    "fir8 8 Free PrefClus 5,3",
    "fir8 8 Free MinComs 5,2",
    "fir8 8 MDC PrefClus 7,3",
    "fir8 8 MDC MinComs 6,2",
    "fir8 8 DDGT PrefClus 7,3",
    "fir8 8 DDGT MinComs 7,2",
    "fir8 16 Free PrefClus 5,3",
    "fir8 16 Free MinComs 5,2",
    "fir8 16 MDC PrefClus 7,3",
    "fir8 16 MDC MinComs 6,2",
    "fir8 16 DDGT PrefClus 11,3",
    "fir8 16 DDGT MinComs 11,2",
    "ptrchase 2 Free PrefClus 5",
    "ptrchase 2 Free MinComs 5",
    "ptrchase 2 MDC PrefClus 5",
    "ptrchase 2 MDC MinComs 5",
    "ptrchase 2 DDGT PrefClus 6",
    "ptrchase 2 DDGT MinComs 6",
    "ptrchase 4 Free PrefClus 3",
    "ptrchase 4 Free MinComs 3",
    "ptrchase 4 MDC PrefClus 3",
    "ptrchase 4 MDC MinComs 3",
    "ptrchase 4 DDGT PrefClus 3",
    "ptrchase 4 DDGT MinComs 3",
    "ptrchase 8 Free PrefClus 3",
    "ptrchase 8 Free MinComs 3",
    "ptrchase 8 MDC PrefClus 3",
    "ptrchase 8 MDC MinComs 3",
    "ptrchase 8 DDGT PrefClus 4",
    "ptrchase 8 DDGT MinComs 4",
    "ptrchase 16 Free PrefClus 3",
    "ptrchase 16 Free MinComs 3",
    "ptrchase 16 MDC PrefClus 3",
    "ptrchase 16 MDC MinComs 3",
    "ptrchase 16 DDGT PrefClus 8",
    "ptrchase 16 DDGT MinComs 8",
];

#[test]
fn ejection_scheduler_never_regresses_an_ii() {
    // ISSUE 5 acceptance: on the gsmdec + trace mix across 2/4/8/16
    // clusters, no (suite, solution, heuristic) cell may schedule at a
    // higher II than the seed scheduler did, at least one MDC/DDGT cell
    // must be *strictly* better, and ejection counts must surface in
    // the per-kernel scheduler stats.
    let base = MachineConfig::paper_baseline();
    let mut seed: std::collections::BTreeMap<String, Vec<u32>> = std::collections::BTreeMap::new();
    for line in SEED_IIS {
        let mut parts = line.split(' ');
        let key = format!(
            "{} {} {} {}",
            parts.next().unwrap(),
            parts.next().unwrap(),
            parts.next().unwrap(),
            parts.next().unwrap()
        );
        let iis = parts
            .next()
            .unwrap()
            .split(',')
            .map(|s| s.parse().unwrap())
            .collect();
        seed.insert(key, iis);
    }
    let mut checked = 0usize;
    let mut strictly_better = 0usize;
    let mut constrained_better = 0usize;
    let mut ejections = 0u64;
    for suite in sweep_default_suites() {
        for n_clusters in [2usize, 4, 8, 16] {
            let machine = sweep_machine(&base, n_clusters, base.mem_buses);
            let pipeline = Pipeline::new(machine);
            for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
                for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
                    let stats = pipeline.run_suite(&suite, solution, heuristic).unwrap();
                    let key = format!("{} {n_clusters} {solution} {heuristic}", suite.name);
                    let want = &seed[&key];
                    assert_eq!(stats.kernels.len(), want.len(), "{key}");
                    for (kernel, &seed_ii) in stats.kernels.iter().zip(want) {
                        assert!(
                            kernel.ii <= seed_ii,
                            "{key} kernel {}: II regressed {} > seed {}",
                            kernel.name,
                            kernel.ii,
                            seed_ii
                        );
                        checked += 1;
                        if kernel.ii < seed_ii {
                            strictly_better += 1;
                            if solution != Solution::Free {
                                constrained_better += 1;
                            }
                        }
                        ejections += kernel.sched.ejections;
                    }
                }
            }
        }
    }
    assert_eq!(checked, 120, "every seed cell was re-scheduled");
    assert!(
        constrained_better > 0,
        "at least one MDC/DDGT cell must schedule strictly lower than seed \
         ({strictly_better} cells improved overall)"
    );
    assert!(
        ejections > 0,
        "the improvements must be visible in the surfaced ejection counts"
    );
}

#[test]
fn ddgt_raises_local_hit_ratio_over_mdc() {
    // Paper Section 4.2: "the local hit ratio is increased by 15% with
    // DDGT compared to the MDC solution" (PrefClus).
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let mut mdc_sum = 0.0;
    let mut ddgt_sum = 0.0;
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        mdc_sum += p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap()
            .local_hit_ratio();
        ddgt_sum += p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap()
            .local_hit_ratio();
    }
    assert!(
        ddgt_sum > mdc_sum * 1.10,
        "DDGT must clearly raise local hits: {ddgt_sum:.3} vs {mdc_sum:.3}"
    );
}

#[test]
fn ddgt_cuts_stall_and_raises_compute() {
    // Paper abstract: "stall time is reduced by 32% ... the DDGT solution
    // increases compute time (+11%)" for PrefClus.
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let mut mdc = (0u64, 0u64); // (compute, stall)
    let mut ddgt = (0u64, 0u64);
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let m = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let d = p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        mdc.0 += m.total.compute_cycles;
        mdc.1 += m.total.stall_cycles;
        ddgt.0 += d.total.compute_cycles;
        ddgt.1 += d.total.stall_cycles;
    }
    assert!(
        ddgt.1 < mdc.1,
        "DDGT stall {} must undercut MDC stall {}",
        ddgt.1,
        mdc.1
    );
    assert!(
        ddgt.0 > mdc.0,
        "DDGT compute {} must exceed MDC compute {}",
        ddgt.0,
        mdc.0
    );
}

#[test]
fn free_baseline_violates_on_chained_benchmarks() {
    // The optimistic baseline is "not real": on alias-heavy loops it
    // reads stale data.
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let mut total = 0;
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        total += p
            .run_suite(&suite, Solution::Free, Heuristic::MinComs)
            .unwrap()
            .total
            .coherence_violations;
    }
    assert!(
        total > 0,
        "the Free baseline must exhibit stale reads somewhere"
    );
}

#[test]
fn specialization_reproduces_table5_direction() {
    // Paper Table 5: code specialization slashes CMR/CAR for epicdec,
    // pgpdec and rasta.
    for (name, new_cmr_paper) in [("epicdec", 0.20), ("pgpdec", 0.52), ("rasta", 0.13)] {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let old = chain_stats(suite.kernels.iter());
        let specialized: Vec<_> = suite
            .kernels
            .iter()
            .map(|k| specialize_kernel(k).0)
            .collect();
        let new = chain_stats(specialized.iter());
        assert!(
            new.cmr < old.cmr,
            "{name}: {:.2} !< {:.2}",
            new.cmr,
            old.cmr
        );
        assert!(
            (new.cmr - new_cmr_paper).abs() < 0.10,
            "{name}: new CMR {:.2} vs paper {new_cmr_paper:.2}",
            new.cmr
        );
    }
}

#[test]
fn attraction_buffers_flip_epicdec_to_ddgt() {
    // Paper Section 5.4: with Attraction Buffers MDC wins everywhere
    // except epicdec, whose 76-op chain overflows a single buffer under
    // MDC while DDGT spreads it across all four.
    let machine =
        MachineConfig::paper_baseline().with_attraction_buffers(AttractionBufferConfig::paper());
    let suite = distvliw::mediabench::suite("epicdec").unwrap();
    let p = Pipeline::new(machine.with_interleave(suite.interleave_bytes));
    let chained = &suite.kernels[0];
    let mdc = p
        .run_kernel(chained, Solution::Mdc, Heuristic::PrefClus)
        .unwrap();
    let ddgt = p
        .run_kernel(chained, Solution::Ddgt, Heuristic::PrefClus)
        .unwrap();
    assert!(
        ddgt.stats.total_cycles() < mdc.stats.total_cycles(),
        "DDGT must win the epicdec AB loop: {} vs {}",
        ddgt.stats.total_cycles(),
        mdc.stats.total_cycles()
    );
    assert!(
        ddgt.stats.local_hit_ratio() > 0.90,
        "DDGT local hits must approach the paper's 97%: {:.3}",
        ddgt.stats.local_hit_ratio()
    );
    assert!(ddgt.stats.local_hit_ratio() > mdc.stats.local_hit_ratio() + 0.15);
}

#[test]
fn nobal_mem_overloads_ddgt_register_buses() {
    // Paper Section 4.2: "For the NOBAL+MEM configuration, the MDC
    // solution always outperforms the DDGT solution".
    let p = Pipeline::new(MachineConfig::nobal_mem());
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let mdc = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let ddgt = p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        assert!(
            mdc.total_cycles() < ddgt.total_cycles(),
            "{name}: MDC {} must beat DDGT {} under NOBAL+MEM",
            mdc.total_cycles(),
            ddgt.total_cycles()
        );
    }
}

#[test]
fn nobal_reg_favors_ddgt_on_big_chains() {
    // Paper Section 4.2: under NOBAL+REG, DDGT(PrefClus) wins epicdec,
    // pgpdec, pgpenc and rasta.
    let p = Pipeline::new(MachineConfig::nobal_reg());
    for name in ["epicdec", "pgpdec", "pgpenc", "rasta"] {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let mdc_pref = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let mdc_min = p
            .run_suite(&suite, Solution::Mdc, Heuristic::MinComs)
            .unwrap();
        let ddgt = p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        let best_mdc = mdc_pref.total_cycles().min(mdc_min.total_cycles());
        assert!(
            ddgt.total_cycles() < best_mdc,
            "{name}: DDGT {} must beat best MDC {} under NOBAL+REG",
            ddgt.total_cycles(),
            best_mdc
        );
    }
}

#[test]
fn g721_chains_are_empty_so_solutions_coincide() {
    // Paper Table 3: g721dec/enc have CMR = CAR = 0; with no chains MDC
    // degenerates to the free schedule.
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let suite = distvliw::mediabench::suite("g721dec").unwrap();
    let free = p
        .run_suite(&suite, Solution::Free, Heuristic::PrefClus)
        .unwrap();
    let mdc = p
        .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
        .unwrap();
    assert_eq!(free.total, mdc.total, "no chains => identical schedules");
}
