//! Shape-level regression tests against the paper's evaluation claims.
//! Absolute numbers differ (our substrate is a synthetic simulator, not
//! the authors' IMPACT testbed); what must hold is *who wins, by roughly
//! what factor, and where the crossovers fall*.

use distvliw::arch::{AttractionBufferConfig, MachineConfig};
use distvliw::coherence::{chain_stats, specialize_kernel};
use distvliw::core::{Heuristic, Pipeline, Solution};

/// Benchmarks with large chains, where the solutions differ most.
const CHAINED: [&str; 3] = ["epicdec", "pgpdec", "rasta"];

#[test]
fn ddgt_raises_local_hit_ratio_over_mdc() {
    // Paper Section 4.2: "the local hit ratio is increased by 15% with
    // DDGT compared to the MDC solution" (PrefClus).
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let mut mdc_sum = 0.0;
    let mut ddgt_sum = 0.0;
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        mdc_sum += p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap()
            .local_hit_ratio();
        ddgt_sum += p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap()
            .local_hit_ratio();
    }
    assert!(
        ddgt_sum > mdc_sum * 1.10,
        "DDGT must clearly raise local hits: {ddgt_sum:.3} vs {mdc_sum:.3}"
    );
}

#[test]
fn ddgt_cuts_stall_and_raises_compute() {
    // Paper abstract: "stall time is reduced by 32% ... the DDGT solution
    // increases compute time (+11%)" for PrefClus.
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let mut mdc = (0u64, 0u64); // (compute, stall)
    let mut ddgt = (0u64, 0u64);
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let m = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let d = p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        mdc.0 += m.total.compute_cycles;
        mdc.1 += m.total.stall_cycles;
        ddgt.0 += d.total.compute_cycles;
        ddgt.1 += d.total.stall_cycles;
    }
    assert!(
        ddgt.1 < mdc.1,
        "DDGT stall {} must undercut MDC stall {}",
        ddgt.1,
        mdc.1
    );
    assert!(
        ddgt.0 > mdc.0,
        "DDGT compute {} must exceed MDC compute {}",
        ddgt.0,
        mdc.0
    );
}

#[test]
fn free_baseline_violates_on_chained_benchmarks() {
    // The optimistic baseline is "not real": on alias-heavy loops it
    // reads stale data.
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let mut total = 0;
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        total += p
            .run_suite(&suite, Solution::Free, Heuristic::MinComs)
            .unwrap()
            .total
            .coherence_violations;
    }
    assert!(
        total > 0,
        "the Free baseline must exhibit stale reads somewhere"
    );
}

#[test]
fn specialization_reproduces_table5_direction() {
    // Paper Table 5: code specialization slashes CMR/CAR for epicdec,
    // pgpdec and rasta.
    for (name, new_cmr_paper) in [("epicdec", 0.20), ("pgpdec", 0.52), ("rasta", 0.13)] {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let old = chain_stats(suite.kernels.iter());
        let specialized: Vec<_> = suite
            .kernels
            .iter()
            .map(|k| specialize_kernel(k).0)
            .collect();
        let new = chain_stats(specialized.iter());
        assert!(
            new.cmr < old.cmr,
            "{name}: {:.2} !< {:.2}",
            new.cmr,
            old.cmr
        );
        assert!(
            (new.cmr - new_cmr_paper).abs() < 0.10,
            "{name}: new CMR {:.2} vs paper {new_cmr_paper:.2}",
            new.cmr
        );
    }
}

#[test]
fn attraction_buffers_flip_epicdec_to_ddgt() {
    // Paper Section 5.4: with Attraction Buffers MDC wins everywhere
    // except epicdec, whose 76-op chain overflows a single buffer under
    // MDC while DDGT spreads it across all four.
    let machine =
        MachineConfig::paper_baseline().with_attraction_buffers(AttractionBufferConfig::paper());
    let suite = distvliw::mediabench::suite("epicdec").unwrap();
    let p = Pipeline::new(machine.with_interleave(suite.interleave_bytes));
    let chained = &suite.kernels[0];
    let mdc = p
        .run_kernel(chained, Solution::Mdc, Heuristic::PrefClus)
        .unwrap();
    let ddgt = p
        .run_kernel(chained, Solution::Ddgt, Heuristic::PrefClus)
        .unwrap();
    assert!(
        ddgt.stats.total_cycles() < mdc.stats.total_cycles(),
        "DDGT must win the epicdec AB loop: {} vs {}",
        ddgt.stats.total_cycles(),
        mdc.stats.total_cycles()
    );
    assert!(
        ddgt.stats.local_hit_ratio() > 0.90,
        "DDGT local hits must approach the paper's 97%: {:.3}",
        ddgt.stats.local_hit_ratio()
    );
    assert!(ddgt.stats.local_hit_ratio() > mdc.stats.local_hit_ratio() + 0.15);
}

#[test]
fn nobal_mem_overloads_ddgt_register_buses() {
    // Paper Section 4.2: "For the NOBAL+MEM configuration, the MDC
    // solution always outperforms the DDGT solution".
    let p = Pipeline::new(MachineConfig::nobal_mem());
    for name in CHAINED {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let mdc = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let ddgt = p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        assert!(
            mdc.total_cycles() < ddgt.total_cycles(),
            "{name}: MDC {} must beat DDGT {} under NOBAL+MEM",
            mdc.total_cycles(),
            ddgt.total_cycles()
        );
    }
}

#[test]
fn nobal_reg_favors_ddgt_on_big_chains() {
    // Paper Section 4.2: under NOBAL+REG, DDGT(PrefClus) wins epicdec,
    // pgpdec, pgpenc and rasta.
    let p = Pipeline::new(MachineConfig::nobal_reg());
    for name in ["epicdec", "pgpdec", "pgpenc", "rasta"] {
        let suite = distvliw::mediabench::suite(name).unwrap();
        let mdc_pref = p
            .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
            .unwrap();
        let mdc_min = p
            .run_suite(&suite, Solution::Mdc, Heuristic::MinComs)
            .unwrap();
        let ddgt = p
            .run_suite(&suite, Solution::Ddgt, Heuristic::PrefClus)
            .unwrap();
        let best_mdc = mdc_pref.total_cycles().min(mdc_min.total_cycles());
        assert!(
            ddgt.total_cycles() < best_mdc,
            "{name}: DDGT {} must beat best MDC {} under NOBAL+REG",
            ddgt.total_cycles(),
            best_mdc
        );
    }
}

#[test]
fn g721_chains_are_empty_so_solutions_coincide() {
    // Paper Table 3: g721dec/enc have CMR = CAR = 0; with no chains MDC
    // degenerates to the free schedule.
    let p = Pipeline::new(MachineConfig::paper_baseline());
    let suite = distvliw::mediabench::suite("g721dec").unwrap();
    let free = p
        .run_suite(&suite, Solution::Free, Heuristic::PrefClus)
        .unwrap();
    let mdc = p
        .run_suite(&suite, Solution::Mdc, Heuristic::PrefClus)
        .unwrap();
    assert_eq!(free.total, mdc.total, "no chains => identical schedules");
}
