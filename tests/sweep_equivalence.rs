//! The factored schedule-once/sim-many sweep must be byte-identical to
//! the naive per-cell pipeline sweep, and the batched memory-system
//! classification must match the sequential `load`/`store` path exactly.

use distvliw::arch::{AttractionBufferConfig, MachineConfig};
use distvliw::core::experiments::{sweep, sweep_default_suites, sweep_naive, SweepSpec};
use distvliw::sim::{BatchAccess, MemorySystem};
use proptest::prelude::*;

/// The tentpole equivalence: every field of every row of the factored
/// default-grid sweep — including scheduler effort counters and the
/// per-cluster usage surface — equals the naive sweep that runs each
/// `(cluster count, bus point, solution, suite)` cell through a cold
/// `Pipeline::run_suite`.
#[test]
fn factored_sweep_is_byte_identical_to_naive() {
    let machine = MachineConfig::paper_baseline();
    let suites = sweep_default_suites();
    let spec = SweepSpec::default();

    let naive = sweep_naive(&machine, &suites, &spec).expect("naive sweep runs");
    let run = sweep(&machine, &suites, &spec).expect("factored sweep runs");

    assert_eq!(run.rows.len(), naive.len());
    for (got, want) in run.rows.iter().zip(&naive) {
        let ctx = format!(
            "{} clusters, {}@{} buses, {}",
            want.n_clusters, want.mem_buses.count, want.mem_buses.latency, want.solution
        );
        assert_eq!(got.n_clusters, want.n_clusters, "{ctx}: n_clusters");
        assert_eq!(got.mem_buses, want.mem_buses, "{ctx}: mem_buses");
        assert_eq!(got.solution, want.solution, "{ctx}: solution");
        assert_eq!(got.total_cycles, want.total_cycles, "{ctx}: total_cycles");
        assert_eq!(got.stall_cycles, want.stall_cycles, "{ctx}: stall_cycles");
        assert_eq!(
            got.bus_busy_cycles, want.bus_busy_cycles,
            "{ctx}: bus_busy_cycles"
        );
        assert_eq!(
            got.bus_drain_cycles, want.bus_drain_cycles,
            "{ctx}: bus_drain_cycles"
        );
        assert_eq!(got.violations, want.violations, "{ctx}: violations");
        assert_eq!(got.accesses, want.accesses, "{ctx}: accesses");
        assert_eq!(got.cluster, want.cluster, "{ctx}: cluster usage");
        assert_eq!(got.sched, want.sched, "{ctx}: sched effort counters");
    }
}

/// The default grid's reuse arithmetic: 4 cluster counts × 2
/// sched-visible bus latencies × 3 concrete solutions × 3 suites = 72
/// compiled schedules; the halved-bus-count column reuses all 36 of its
/// cells; the doubled-latency column is sched-visible and falls back to
/// 36 recompiles.
#[test]
fn default_grid_reuse_counters_are_exact() {
    let run = sweep(
        &MachineConfig::paper_baseline(),
        &sweep_default_suites(),
        &SweepSpec::default(),
    )
    .expect("factored sweep runs");
    assert_eq!(run.reuse.schedules_compiled, 72);
    assert_eq!(run.reuse.schedules_reused, 36);
    assert_eq!(run.reuse.sched_axis_recompiles, 36);
}

/// Strategy: a mixed batch of loads, architectural stores and nullified
/// DDGT store instances from random clusters over a small address
/// range (small enough that subblocks collide, exercising combining,
/// pending fills and LRU pressure).
fn arb_batch(n_clusters: usize) -> impl Strategy<Value = Vec<BatchAccess>> {
    proptest::collection::vec(
        (0..n_clusters, 0u64..4096, any::<bool>(), any::<bool>()),
        1..24,
    )
    .prop_map(|accs| {
        accs.into_iter()
            .map(|(cluster, addr, store, executes)| BatchAccess {
                cluster,
                addr,
                store,
                executes,
            })
            .collect()
    })
}

/// Replays `windows` through both paths on clones of one cold memory
/// system and asserts identical per-access results and identical
/// observable state (global and per-cluster classification counters,
/// bus occupancy/drain and grant counts).
fn assert_batch_matches_sequential(machine: &MachineConfig, windows: &[Vec<BatchAccess>]) {
    let mut batched = MemorySystem::new(machine);
    let mut sequential = batched.clone();
    let mut out = Vec::new();
    for (i, window) in windows.iter().enumerate() {
        // Windows at spaced issue times, so earlier fills both stay
        // pending across windows and expire, covering both branches.
        let now = (i as u64) * 7;
        batched.run_batch(now, window, &mut out);
        let seq: Vec<_> = window
            .iter()
            .map(|a| {
                if a.store {
                    sequential.store(a.cluster, a.addr, now, a.executes)
                } else {
                    Some(sequential.load(a.cluster, a.addr, now))
                }
            })
            .collect();
        assert_eq!(out, seq, "window {i}: per-access results diverge");
    }
    assert_eq!(batched.counts, sequential.counts, "global counts");
    for c in 0..machine.n_clusters {
        assert_eq!(
            batched.counts_of_cluster(c),
            sequential.counts_of_cluster(c),
            "cluster {c} counts"
        );
    }
    assert_eq!(batched.bus_busy_cycles(), sequential.bus_busy_cycles());
    assert_eq!(batched.bus_drain_cycles(), sequential.bus_drain_cycles());
    assert_eq!(batched.mem_bus_grants(), sequential.mem_bus_grants());
    assert_eq!(batched.next_level_grants(), sequential.next_level_grants());
}

proptest! {
    /// `run_batch` over random access mixes is byte-identical — results
    /// and all observable counters — to the equivalent sequence of
    /// individual `load`/`store` calls, on the paper baseline (shift/mask
    /// address translation).
    #[test]
    fn run_batch_matches_sequential_on_baseline(
        windows in proptest::collection::vec(arb_batch(4), 1..6)
    ) {
        assert_batch_matches_sequential(&MachineConfig::paper_baseline(), &windows);
    }

    /// Same equivalence with Attraction Buffers enabled, covering the
    /// AB-refresh store lanes and AB-hit remote loads.
    #[test]
    fn run_batch_matches_sequential_with_attraction_buffers(
        windows in proptest::collection::vec(arb_batch(4), 1..6)
    ) {
        let machine = MachineConfig::paper_baseline()
            .with_attraction_buffers(AttractionBufferConfig::paper());
        assert_batch_matches_sequential(&machine, &windows);
    }
}
