//! Quickstart: compile and simulate one Mediabench-like benchmark under
//! both coherence solutions and compare them against the (unsound) free
//! baseline.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distvliw::arch::MachineConfig;
use distvliw::core::{Heuristic, Pipeline, Solution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table 2 machine: 4 clusters, word-interleaved 8KB
    // distributed cache, 4+4 half-frequency buses.
    let machine = MachineConfig::paper_baseline();
    let pipeline = Pipeline::new(machine);

    // One of the fourteen bundled Mediabench-like suites.
    let suite = distvliw::mediabench::suite("gsmdec").expect("bundled benchmark");
    println!(
        "benchmark {} ({} loops, interleave {}B)",
        suite.name,
        suite.kernels.len(),
        suite.interleave_bytes
    );

    for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
        let stats = pipeline.run_suite(&suite, solution, Heuristic::PrefClus)?;
        println!(
            "  {:<4} cycles={:>9} (compute {:>9} + stall {:>7})  local-hit {:>5.1}%  violations {}",
            solution.to_string(),
            stats.total.total_cycles(),
            stats.total.compute_cycles,
            stats.total.stall_cycles,
            stats.local_hit_ratio() * 100.0,
            stats.total.coherence_violations,
        );
    }

    println!(
        "\nThe Free baseline schedules aliased memory operations in any cluster\n\
         and may read stale data (violations > 0 on alias-heavy loops); the\n\
         MDC and DDGT solutions are always coherent without extra hardware."
    );
    Ok(())
}
