//! Building a custom loop kernel against the public API: an in-place
//! 3-tap smoothing filter, scheduled with every solution/heuristic
//! combination on a custom 8-cluster machine.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use distvliw::arch::{BusConfig, CacheConfig, MachineConfig};
use distvliw::core::{Heuristic, Pipeline, Solution};
use distvliw::ir::{AddressStream, DdgBuilder, DepKind, LoopKernel, OpKind, Width};

/// `x[i] = (x[i-1] + x[i] + x[i+1]) / 3` over a wrapping window.
fn smoothing_filter() -> LoopKernel {
    let mut b = DdgBuilder::new();
    let left = b.load(Width::W4);
    let mid = b.load(Width::W4);
    let right = b.load(Width::W4);
    let sum = b.op(OpKind::IntAlu, &[left, mid]);
    let sum = b.op(OpKind::IntAlu, &[sum, right]);
    let avg = b.op(OpKind::IntMul, &[sum]);
    let store = b.store(Width::W4, &[avg]);

    // The compiler's disambiguator: the store overwrites x[i], which the
    // `left` load of iteration i+1 and the `mid` load rely on.
    b.dep(mid, store, DepKind::MemAnti, 0);
    b.dep(right, store, DepKind::MemAnti, 1);
    b.dep(store, left, DepKind::MemFlow, 1);
    let ddg = b.finish();

    let mems: Vec<_> = ddg
        .mem_nodes()
        .map(|n| ddg.node(n).mem_id().unwrap())
        .collect();
    let mut kernel = LoopKernel::new("smooth3", ddg, 512);
    let offsets = [0i64, 4, 8, 4]; // left, mid, right, store(mid)
    for image in [&mut kernel.profile, &mut kernel.exec] {
        for (&mem, &off) in mems.iter().zip(&offsets) {
            image.insert(
                mem,
                AddressStream::Affine {
                    base: (4096 + off) as u64,
                    stride: 4,
                },
            );
        }
    }
    kernel
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-up machine: 8 clusters, 16KB cache, wider buses.
    let machine = MachineConfig {
        n_clusters: 8,
        cache: CacheConfig {
            total_bytes: 16 * 1024,
            block_bytes: 64,
            assoc: 2,
            latency: 1,
        },
        reg_buses: BusConfig {
            count: 8,
            latency: 2,
        },
        mem_buses: BusConfig {
            count: 8,
            latency: 2,
        },
        ..MachineConfig::paper_baseline()
    };
    machine.validate()?;
    let pipeline = Pipeline::new(machine);

    let kernel = smoothing_filter();
    println!(
        "custom kernel `{}`: {} ops over {} iterations\n",
        kernel.name,
        kernel.ddg.node_count(),
        kernel.trip_count
    );

    println!(
        "{:<6} {:<9} | {:>4} {:>9} {:>8} {:>10}",
        "sol", "heuristic", "II", "cycles", "stall", "violations"
    );
    for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
        for heuristic in [Heuristic::PrefClus, Heuristic::MinComs] {
            let run = pipeline.run_kernel(&kernel, solution, heuristic)?;
            println!(
                "{:<6} {:<9} | {:>4} {:>9} {:>8} {:>10}",
                solution.to_string(),
                heuristic.to_string(),
                run.ii,
                run.stats.total_cycles(),
                run.stats.stall_cycles,
                run.stats.coherence_violations,
            );
        }
    }
    Ok(())
}
