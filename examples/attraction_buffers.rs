//! The Attraction Buffer study on the epicdec case-study loop (paper
//! Section 5.4): with MDC the 76-memory-op chain funnels through one
//! cluster and overflows its 16-entry buffer; DDGT spreads the accesses
//! so all four buffers work, local hits jump and stall time collapses.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example attraction_buffers
//! ```

use distvliw::arch::{AttractionBufferConfig, MachineConfig};
use distvliw::core::{Heuristic, Pipeline, Solution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = distvliw::mediabench::suite("epicdec").expect("bundled benchmark");
    let chained = &suite.kernels[0];
    println!(
        "epicdec chained loop: {} operations",
        chained.ddg.node_count()
    );

    for (label, machine) in [
        ("no Attraction Buffers", MachineConfig::paper_baseline()),
        (
            "16-entry 2-way Attraction Buffers",
            MachineConfig::paper_baseline()
                .with_attraction_buffers(AttractionBufferConfig::paper()),
        ),
    ] {
        println!("\n== {label} ==");
        let pipeline = Pipeline::new(machine.with_interleave(suite.interleave_bytes));
        for solution in [Solution::Mdc, Solution::Ddgt] {
            let run = pipeline.run_kernel(chained, solution, Heuristic::PrefClus)?;
            println!(
                "  {:<4} II={:<3} cycles={:>8} (stall {:>6})  local-hit {:>5.1}%",
                solution.to_string(),
                run.ii,
                run.stats.total_cycles(),
                run.stats.stall_cycles,
                run.stats.local_hit_ratio() * 100.0,
            );
        }
    }

    println!(
        "\nPaper Section 5.4: the loop's local hit ratio rises from 65% with\n\
         MDC to 97% with DDGT once Attraction Buffers are present, and DDGT\n\
         gains ~24% on the loop — the shape reproduced above."
    );
    Ok(())
}
