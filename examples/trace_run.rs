//! Trace workloads: load a recorded address-stream trace from disk and
//! run it through the full pipeline under every coherence solution.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_run [path/to/file.trace]
//! ```
//!
//! Without an argument this loads the committed `traces/ptrchase.trace`
//! (resolved relative to the crate root, so it works from any working
//! directory). See `docs/workloads.md` for the trace format and the
//! recording protocol.

use distvliw::arch::MachineConfig;
use distvliw::core::{Heuristic, Pipeline, Solution};
use distvliw::mediabench::trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/traces/ptrchase.trace", env!("CARGO_MANIFEST_DIR")));
    let trace = trace::load(&path)?;
    println!(
        "trace {} ({} kernels, interleave {}B, recorded on {} clusters)",
        trace.name,
        trace.kernels.len(),
        trace.interleave,
        trace.clusters
    );

    // A trace replays like any bundled suite: honest memory
    // disambiguation over the recorded streams, then the coherence
    // pass, cluster-aware modulo scheduling and cycle-level simulation.
    let suite = trace.to_suite();
    let pipeline = Pipeline::new(MachineConfig::paper_baseline());
    for solution in [Solution::Free, Solution::Mdc, Solution::Ddgt] {
        let stats = pipeline.run_suite(&suite, solution, Heuristic::PrefClus)?;
        println!(
            "  {:<4} cycles={:>8} (compute {:>8} + stall {:>7})  local-hit {:>5.1}%  \
             imbalance {:.2}  violations {}",
            solution.to_string(),
            stats.total.total_cycles(),
            stats.total.compute_cycles,
            stats.total.stall_cycles,
            stats.local_hit_ratio() * 100.0,
            stats.cluster.imbalance(),
            stats.total.coherence_violations,
        );
    }

    println!(
        "\nThe recorded profile streams differ from the execution streams, so\n\
         the unrestricted baseline schedules by stale information and may read\n\
         stale data; MDC and DDGT stay coherent on the same trace."
    );
    Ok(())
}
