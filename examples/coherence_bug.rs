//! The paper's Figure 2 scenario, end to end: a store whose home cluster
//! is far away, followed by an aliased load scheduled locally. Free
//! scheduling reads stale data; the MDC and DDGT solutions eliminate
//! every violation.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example coherence_bug
//! ```

use distvliw::arch::MachineConfig;
use distvliw::coherence::{find_chains, transform, SchedConstraints};
use distvliw::ir::{AddressStream, DdgBuilder, DepKind, LoopKernel, OpKind, PrefMap, Width};
use distvliw::sched::{Heuristic, ModuloScheduler};
use distvliw::sim::{simulate_kernel, SimOptions};

/// Builds the Figure 2 loop: `store X; load X` every iteration, where
/// variable X lives in cluster 0's cache module.
fn figure2_kernel() -> LoopKernel {
    let mut b = DdgBuilder::new();
    let value = b.op(OpKind::IntAlu, &[]);
    let store = b.store(Width::W4, &[value]);
    let load = b.load(Width::W4);
    let _use = b.op(OpKind::IntAlu, &[load]);
    b.dep(store, load, DepKind::MemFlow, 0);
    // The next iteration's store overwrites what the load just read: a
    // memory-anti dependence at distance 1. DDGT's load–store
    // synchronization hangs off exactly this edge, so omitting it (as an
    // earlier revision of this example did) leaves the replicated store
    // racing the load.
    b.dep(load, store, DepKind::MemAnti, 1);
    let ddg = b.finish();

    let st_mem = ddg.node(store).mem_id().expect("store site");
    let ld_mem = ddg.node(load).mem_id().expect("load site");
    let mut kernel = LoopKernel::new("figure2", ddg, 256);
    for image in [&mut kernel.profile, &mut kernel.exec] {
        // Address 64 maps to cluster 0 under 4-byte word interleaving.
        image.insert(
            st_mem,
            AddressStream::Affine {
                base: 64,
                stride: 0,
            },
        );
        image.insert(
            ld_mem,
            AddressStream::Affine {
                base: 64,
                stride: 0,
            },
        );
    }
    kernel
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::paper_baseline();
    let kernel = figure2_kernel();
    let store = kernel.ddg.stores().next().expect("one store");
    let load = kernel.ddg.loads().next().expect("one load");

    // --- The bug: pin the store far from home, the load at home. ---
    let mut pathological = SchedConstraints::none();
    pathological.pinned.insert(store, 3);
    pathological.pinned.insert(load, 0);
    let schedule = ModuloScheduler::new(&machine)
        .with_latency_relaxation(false)
        .schedule(
            &kernel.ddg,
            &pathological,
            &PrefMap::new(),
            Heuristic::MinComs,
        )?;
    let stats = simulate_kernel(&machine, &kernel, &schedule, SimOptions::default());
    println!("Free scheduling (store in cluster 4, load in cluster 1):");
    println!("  {stats}");
    println!(
        "  -> {} stale reads: the store's update travels over a busy",
        stats.coherence_violations
    );
    println!("     memory bus and reaches variable X *after* the load reads it.\n");

    // --- Fix 1: MDC keeps the chain in one cluster. ---
    let chains = find_chains(&kernel.ddg);
    let constraints = SchedConstraints::for_mdc(&chains, &kernel.ddg, None, machine.n_clusters);
    let schedule = ModuloScheduler::new(&machine).schedule(
        &kernel.ddg,
        &constraints,
        &PrefMap::new(),
        Heuristic::MinComs,
    )?;
    let stats = simulate_kernel(&machine, &kernel, &schedule, SimOptions::default());
    println!("MDC (memory dependent chain colocated):");
    println!("  {stats}\n");
    assert_eq!(stats.coherence_violations, 0);

    // --- Fix 2: DDGT replicates the store; the home instance commits. ---
    let mut ddgt_kernel = kernel.clone();
    let report = transform(&mut ddgt_kernel.ddg, machine.n_clusters);
    let constraints = SchedConstraints::for_ddgt(&report);
    let schedule = ModuloScheduler::new(&machine).schedule(
        &ddgt_kernel.ddg,
        &constraints,
        &PrefMap::new(),
        Heuristic::MinComs,
    )?;
    let stats = simulate_kernel(&machine, &ddgt_kernel, &schedule, SimOptions::default());
    println!(
        "DDGT (store replicated {} ways, {} SYNC edges, {} fake consumers):",
        machine.n_clusters,
        report.sync_edges,
        report.fake_consumers.len()
    );
    println!("  {stats}");
    assert_eq!(stats.coherence_violations, 0);
    Ok(())
}
