//! Test-case errors and the deterministic RNG driving generation.

use std::fmt;

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The case was rejected (e.g. by `prop_assume!`) and should be
    /// skipped, not counted as a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Whether this is a rejection rather than a failure.
    #[must_use]
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator seeded from the test's name, so a
/// failing case reproduces on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `test_name` (FNV-1a over the bytes).
    #[must_use]
    pub fn for_test(test_name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn error_kinds() {
        assert!(!TestCaseError::fail("no").is_reject());
        assert!(TestCaseError::reject("skip").is_reject());
        assert_eq!(TestCaseError::fail("no").to_string(), "no");
    }
}
