//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace (the build environment has no network access to crates.io).
//!
//! Implemented: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter` / `boxed`, integer-range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`], [`prop_oneof!`],
//! [`prop_assert!`] / [`prop_assert_eq!`] and [`ProptestConfig`].
//!
//! Deliberately missing relative to the real crate: shrinking (failures
//! report the failing inputs but are not minimized), persistence of
//! failure seeds, and the full `Arbitrary` derive machinery. Generation is
//! deterministic per test (seeded from the test's module path and name),
//! so failures are reproducible run to run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::TestCaseError;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_filter`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// ```no_run
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let strat = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cfg.cases {
                    let ($($arg,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let inputs = format!("{:#?}", ($(&$arg,)+));
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { { $body } ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(e) if e.is_reject() => {}
                        ::core::result::Result::Err(e) => panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case, cfg.cases, e, inputs,
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)).into(),
            );
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Rejects the current case when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)).into(),
            );
        }
    };
}

/// Picks uniformly among the given strategies (which must share a value
/// type). Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
