//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: an exact length or a half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size() {
        let mut rng = TestRng::for_test("vec-exact");
        let v = vec(0u8..10, 8).generate(&mut rng);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn ranged_size() {
        let mut rng = TestRng::for_test("vec-range");
        for _ in 0..100 {
            let v = vec(0u64..1000, 1..32).generate(&mut rng);
            assert!((1..32).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 1000));
        }
    }
}
