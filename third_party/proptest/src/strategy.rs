//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::ops::Range;

use crate::test_runner::TestRng;

/// How many times `prop_filter` retries before declaring the filter
/// unsatisfiable.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// A recipe for generating values of some type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, retrying generation otherwise.
    /// `whence` names the filter in the panic raised if generation never
    /// satisfies it.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Chains a strategy-producing function (regeneration-based; no
    /// shrinking relationship is kept).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

impl<V> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {MAX_FILTER_RETRIES} candidates",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    let off = rng.below(span);
                    // Wrapping add handles signed ranges (offset < span
                    // keeps the result inside the range).
                    self.start.wrapping_add(off as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = self.end().abs_diff(*self.start()) as u64;
                    let off = rng.below(span.saturating_add(1).max(1));
                    self.start().wrapping_add(off as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let s = (-64i64..64).generate(&mut r);
            assert!((-64..64).contains(&s));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut r = rng();
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("even above 10", |&v| v > 10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v > 10);
        }
    }

    #[test]
    fn union_picks_all_options() {
        let mut r = rng();
        let s = crate::prop_oneof![0u32..1, 10u32..11];
        let mut seen = [false; 2];
        for _ in 0..100 {
            match s.generate(&mut r) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b) = (0u8..4, 100u64..200).generate(&mut r);
        assert!(a < 4);
        assert!((100..200).contains(&b));
    }

    #[test]
    fn just_clones() {
        let mut r = rng();
        assert_eq!(Just(41).generate(&mut r), 41);
    }
}
