//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_range() {
        let mut rng = TestRng::for_test("any-u8");
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v = any::<u8>().generate(&mut rng);
            lo |= v < 64;
            hi |= v > 192;
        }
        assert!(lo && hi);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::for_test("any-bool");
        let vals: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
