//! Offline stand-in for the subset of the `criterion` benchmark API used
//! by this workspace (the build environment has no network access to
//! crates.io).
//!
//! It really measures: each `bench_function` is calibrated so one sample
//! lasts at least `MIN_SAMPLE_NANOS` (2 ms), then `sample_size` samples are
//! timed and the **median** nanoseconds-per-iteration is reported —
//! enough fidelity to compare scheduler revisions, which is all the
//! workspace asks of it. Missing relative to the real crate: statistical
//! outlier analysis, plots, and saved baselines. Set the `BENCH_JSON`
//! environment variable to also write the results as a JSON array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Calibration target: minimum wall-clock nanoseconds per sample.
const MIN_SAMPLE_NANOS: u128 = 2_000_000;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Registers a free-standing benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let result = run_bench(&id, 20, f);
        self.results.push(result);
        self
    }

    /// All results measured so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a summary table and honors `BENCH_JSON`.
    pub fn finalize(&self) {
        println!(
            "\n{:<48} {:>14} {:>8} {:>8}",
            "benchmark", "median", "iters", "samples"
        );
        for r in &self.results {
            println!(
                "{:<48} {:>14} {:>8} {:>8}",
                r.id,
                format_ns(r.median_ns),
                r.iters_per_sample,
                r.samples
            );
        }
        if let Ok(path) = std::env::var("BENCH_JSON") {
            match std::fs::write(&path, results_json(&self.results)) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

/// Renders results as a JSON array (hand-rolled; no serde available).
#[must_use]
pub fn results_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}}}{comma}\n",
            r.id.replace('"', "\\\""),
            r.median_ns,
            r.iters_per_sample,
            r.samples
        ));
    }
    out.push_str("]\n");
    out
}

/// Parses a JSON array written by [`results_json`] back into results.
/// The parser accepts exactly the writer's shape (one object per line,
/// the four known fields); anything else is an error. Hand-rolled for
/// the same reason the writer is: no serde in the offline build.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn results_from_json(text: &str) -> Result<Vec<BenchResult>, String> {
    fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\": ");
        let start = obj
            .find(&pat)
            .ok_or_else(|| format!("missing field `{key}` in `{obj}`"))?
            + pat.len();
        let rest = &obj[start..];
        let end = rest
            .find([',', '}'])
            .ok_or_else(|| format!("unterminated field `{key}` in `{obj}`"))?;
        Ok(rest[..end].trim())
    }

    let mut results = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue; // array brackets / blank lines
        }
        // The id is parsed by scanning to its closing quote (not to the
        // next ','/'}' like the numeric fields), so ids containing
        // commas, braces or escaped quotes roundtrip.
        let id_pat = "\"id\": \"";
        let id_start = line
            .find(id_pat)
            .ok_or_else(|| format!("missing field `id` in `{line}`"))?
            + id_pat.len();
        let mut id = String::new();
        let mut chars = line[id_start..].chars();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some(c) => id.push(c),
                    None => return Err(format!("unterminated id escape in `{line}`")),
                },
                Some('"') => break,
                Some(c) => id.push(c),
                None => return Err(format!("unterminated id in `{line}`")),
            }
        }
        let parse_num = |key: &str| -> Result<f64, String> {
            field(line, key)?
                .parse::<f64>()
                .map_err(|e| format!("bad `{key}` in `{line}`: {e}"))
        };
        results.push(BenchResult {
            id,
            median_ns: parse_num("median_ns")?,
            iters_per_sample: parse_num("iters_per_sample")? as u64,
            samples: parse_num("samples")? as usize,
        });
    }
    Ok(results)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let result = run_bench(&id, self.sample_size, f);
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (results were already recorded).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` the harness-chosen number of times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) -> BenchResult {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes at least MIN_SAMPLE_NANOS.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed.as_nanos() >= MIN_SAMPLE_NANOS || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = per_iter[per_iter.len() / 2];
    println!(
        "bench {id}: {} / iter ({iters} iters, {samples} samples)",
        format_ns(median_ns)
    );
    BenchResult {
        id: id.to_string(),
        median_ns,
        iters_per_sample: iters,
        samples,
    }
}

/// Declares a function running the listed benchmarks against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "g/spin");
        assert!(c.results()[0].median_ns > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = vec![BenchResult {
            id: "a/b".into(),
            median_ns: 12.5,
            iters_per_sample: 4,
            samples: 3,
        }];
        let j = results_json(&r);
        assert!(j.starts_with("[\n"));
        assert!(j.contains("\"id\": \"a/b\""));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn json_roundtrips() {
        let r = vec![
            BenchResult {
                id: "sched/a".into(),
                median_ns: 12.5,
                iters_per_sample: 4,
                samples: 3,
            },
            BenchResult {
                id: "sim/\"q\"".into(),
                median_ns: 7.0,
                iters_per_sample: 1,
                samples: 10,
            },
        ];
        let parsed = results_from_json(&results_json(&r)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, "sched/a");
        assert!((parsed[0].median_ns - 12.5).abs() < 1e-9);
        assert_eq!(parsed[0].iters_per_sample, 4);
        assert_eq!(parsed[1].id, "sim/\"q\"");
        assert_eq!(parsed[1].samples, 10);
    }

    #[test]
    fn ids_with_commas_and_braces_roundtrip() {
        let r = vec![BenchResult {
            id: "pipeline/{gsmdec,epicdec}".into(),
            median_ns: 3.0,
            iters_per_sample: 1,
            samples: 2,
        }];
        let parsed = results_from_json(&results_json(&r)).unwrap();
        assert_eq!(parsed[0].id, "pipeline/{gsmdec,epicdec}");
        assert_eq!(parsed[0].samples, 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(results_from_json("[\n  {\"median_ns\": 1.0}\n]\n").is_err());
        assert!(results_from_json("[\n  {\"id\": \"a\", \"median_ns\": x}\n]\n").is_err());
        assert_eq!(results_from_json("[]\n").unwrap().len(), 0);
    }
}
