//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace (the build environment has no network access to crates.io).
//!
//! Provides [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`] and
//! uniform range sampling via [`RngExt::random_range`]. The generator is
//! SplitMix64: statistically solid for synthetic benchmark generation and
//! fully deterministic per seed, which is all the workspace needs. It is
//! **not** the real `StdRng` (ChaCha12) and must not be used where
//! cryptographic quality matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for random number generators.
pub trait RngExt {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
        // bias of the plain widening multiply is irrelevant for synthetic
        // address streams.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.random_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5);
    }
}
